#include "core/runtime.hpp"

#include <cassert>
#include <cmath>
#include <cstring>
#include <stdexcept>

#include "obs/trace.hpp"
#include "sim/cluster.hpp"
#include "util/logging.hpp"

namespace sn::core {

namespace {

bool is_offloadable_producer(const graph::Layer* l) {
  // UTP offloads checkpoint-layer outputs; the paper restricts offloading to
  // CONV layers (§3.3.1) since FC/Dropout/Softmax hold <1% of memory. DATA
  // behaves like a CONV output for this purpose (large, forward-produced,
  // backward-consumed).
  return l->type() == graph::LayerType::kConv || l->type() == graph::LayerType::kData;
}

int resolve_lookahead(const RuntimeOptions& opts, const graph::Net& net) {
  return opts.prefetch_lookahead == kPrefetchLookaheadAuto ? default_prefetch_lookahead(net)
                                                           : opts.prefetch_lookahead;
}

}  // namespace

Runtime::Runtime(graph::Net& net, RuntimeOptions opts)
    : net_(net),
      opts_(opts),
      owned_machine_(opts.cluster ? nullptr : std::make_unique<sim::Machine>(opts.spec)),
      machine_(opts.cluster ? opts.cluster->machine(opts.device_id) : *owned_machine_),
      cost_(opts.spec),
      liveness_(net, opts.recompute != RecomputeMode::kNone),
      plan_(net, opts.recompute),
      prefetcher_(net, resolve_lookahead(opts, net)) {
  if (!net.finalized()) throw std::logic_error("Runtime: net must be finalized");
  prefetcher_.set_remote_gate(
      [this](uint64_t uid) { return external_pending_.count(uid) != 0; });

  UnifiedTensorPool::Config pool_cfg;
  pool_cfg.real = opts_.real;
  pool_cfg.use_pool_allocator = opts_.use_pool_allocator;
  pool_cfg.tensor_cache = opts_.tensor_cache;
  pool_cfg.async_transfers = opts_.async_transfers;
  pool_cfg.pinned_host = opts_.pinned_host;
  pool_cfg.device_capacity = opts_.device_capacity;
  pool_cfg.host_capacity = opts_.host_capacity;
  pool_cfg.device_id = opts_.device_id;
  UnifiedTensorPool::Hooks hooks;
  hooks.droppable = [this](const tensor::Tensor* t) { return plan_.droppable(t); };
  hooks.persistent = [this](uint64_t uid) { return liveness_.is_persistent(uid); };
  hooks.last_forward_use = [this](uint64_t uid) { return last_forward_use_[uid]; };
  pool_ = std::make_unique<UnifiedTensorPool>(net.registry(), machine_, pool_cfg,
                                              std::move(hooks));

  const size_t ntensors = net.registry().size();
  producer_.assign(ntensors, nullptr);
  last_forward_use_.assign(ntensors, -1);
  is_offload_target_.assign(ntensors, false);

  const int nfwd = static_cast<int>(net.route().size());
  for (const auto& l : net.layers()) {
    for (tensor::Tensor* t : l->forward_defs()) producer_[t->uid()] = l.get();
    for (tensor::Tensor* t : l->param_grads()) producer_[t->uid()] = l.get();
    if (tensor::Tensor* g = l->output_grad()) producer_[g->uid()] = l.get();
    if (is_offloadable_producer(l.get())) is_offload_target_[l->output()->uid()] = true;
  }
  for (const auto& step : net.steps()) {
    if (step.index >= nfwd) break;
    for (auto* t : step.layer->forward_uses()) last_forward_use_[t->uid()] = step.index;
    for (auto* t : step.layer->forward_defs()) {
      if (last_forward_use_[t->uid()] < step.index) last_forward_use_[t->uid()] = step.index;
    }
  }

  // Precompute the per-forward-step drop lists for recomputation: droppable
  // tensors whose forward consumers are done but that backward still needs.
  // fwd_free_lists_ additionally covers every tensor (inference mode).
  drop_after_fwd_.resize(nfwd);
  fwd_free_lists_.resize(nfwd);
  for (const auto& t : net.registry().all()) {
    uint64_t uid = t->uid();
    int lf = last_forward_use_[uid];
    if (lf < 0 || lf >= nfwd) continue;
    if (!liveness_.is_persistent(uid)) fwd_free_lists_[lf].push_back(uid);
    if (!plan_.droppable(t.get())) continue;
    if (liveness_.last_occurrence(uid) > lf) drop_after_fwd_[lf].push_back(uid);
  }
}

// --------------------------------------------------------------------------
// materialization (policy over the pool's state machine)

void Runtime::materialize(tensor::Tensor* t) {
  // A prefetch may be in flight for this tensor: its device buffer exists
  // but the data lands only when the event completes. Peer fetch-backs leave
  // the tensor kPeer while in flight, so land those first too.
  if (pool_->prefetch_pending(t->uid())) pool_->finish_prefetch(t);
  if (pool_->peer_fetch_pending(t->uid())) pool_->finish_peer_fetch(t);
  if (t->on_device()) {
    if (opts_.tensor_cache && !liveness_.is_persistent(t->uid())) {
      pool_->cache().touch(t->uid());
      pool_->cache().count_hit();
    }
    return;
  }
  if (t->on_host()) {
    pool_->fetch_from_host(t);
    return;
  }
  if (t->residency == tensor::Residency::kPeer) {
    pool_->fetch_from_peer(t);
    return;
  }
  if (t->residency == tensor::Residency::kDropped) {
    graph::Layer* prod = producer_of(t);
    int seg = plan_.segment_of(prod);
    if (!in_replay_ && seg >= 0 && plan_.segments()[seg].speed_centric) {
      // Speed-centric: replay the whole segment once; later backward steps
      // in the segment reuse the regenerated tensors (Fig. 9a). Under severe
      // memory pressure a later replay may evict an earlier regeneration,
      // so a targeted chain replay below backstops the specific tensor.
      in_replay_ = true;
      for (graph::Layer* l : plan_.segments()[seg].layers) replay_forward(l);
      in_replay_ = false;
      if (t->on_device()) return;
    }
    // Memory-centric (and nested-replay) path: replay only the ancestor
    // chain of this tensor; post_step() re-drops what was regenerated
    // (Fig. 9b). The chain holds locks top-down, so the target cannot be
    // evicted before it is returned to the caller.
    bool saved = in_replay_;
    in_replay_ = true;
    replay_forward(prod);
    in_replay_ = saved;
    if (!t->on_device()) {
      throw std::logic_error("recompute failed to materialize " + t->name());
    }
    return;
  }
  throw std::logic_error("use of never-defined tensor " + t->name());
}

void Runtime::replay_forward(graph::Layer* layer) {
  // Skip when everything this layer defines is already live.
  bool live = layer->output()->on_device();
  for (const tensor::Tensor* a : layer->aux()) live = live && a->on_device();
  if (live) return;

  auto uses = layer->forward_uses();
  auto defs = layer->forward_defs();
  // Lock as we go: materializing a later dependency may trigger eviction,
  // which must not reclaim dependencies staged moments earlier.
  for (tensor::Tensor* u : uses) {
    materialize(u);
    u->lock();
  }
  for (tensor::Tensor* d : defs) {
    ensure_def(d);
    d->lock();
  }

  StepTelemetry scratch;
  run_layer_pass(layer, /*forward=*/true, nullptr, nullptr, nullptr, &scratch);
  ++extra_forwards_;
  for (const tensor::Tensor* d : defs) regenerated_.push_back(d->uid());

  lock(uses, false);
  lock(defs, false);
  note_peak();
}

void Runtime::ensure_def(tensor::Tensor* t) {
  // A definition target may have a prefetch in flight (a partially
  // accumulated gradient staged back for this step): the kernel must not
  // write the buffer while the DMA engine is still filling it.
  if (pool_->prefetch_pending(t->uid())) pool_->finish_prefetch(t);
  if (pool_->peer_fetch_pending(t->uid())) pool_->finish_peer_fetch(t);
  if (!t->on_device()) {
    if (t->on_host()) {
      // Definitions can be read-modify-write (gradient accumulation across
      // fan-out consumers): an evicted partial result must round-trip back,
      // not be re-allocated blank. Falls through to the first-def zeroing
      // check below, which is a no-op within the same iteration.
      pool_->fetch_from_host(t);
    } else if (t->residency == tensor::Residency::kPeer) {
      // Same round-trip contract for a partial result staged in a peer pool.
      pool_->fetch_from_peer(t);
    } else {
      // Aliased definitions consume no new device memory (simulation-only
      // accounting of framework-specific reuse): Torch-style in-place
      // activations, and Caffe/Torch reuse of forward tensors as backward
      // data buffers (§2.2).
      graph::Layer* prod = producer_of(t);
      bool alias_act = opts_.inplace_act && prod && prod->type() == graph::LayerType::kAct &&
                       t->kind() == tensor::TensorKind::kData;
      bool alias_grad = opts_.reuse_grad_buffers && t->kind() == tensor::TensorKind::kGrad;
      if (!opts_.real && (alias_act || alias_grad)) {
        pool_->adopt_alias(t);
        return;
      }
      pool_->alloc_device(t);
      t->residency = tensor::Residency::kDevice;
    }
  }
  // The kernel writes this def: a host copy fetched (or prefetched) back —
  // e.g. a partially accumulated gradient — is stale from here on, and
  // eviction must re-offload rather than resurrect it.
  pool_->mark_dirty(t);
  if (t->kind() == tensor::TensorKind::kGrad && !zeroed_grads_.count(t->uid())) {
    zeroed_grads_.insert(t->uid());
    if (opts_.real) {
      if (float* p = device_ptr(t)) std::memset(p, 0, t->bytes());
    }
    machine_.run_compute(cost_.bandwidth_time(t->bytes()));
  }
}

// --------------------------------------------------------------------------
// step execution

void Runtime::charge_layer_time(const graph::Layer* layer, bool forward, nn::ConvAlgo algo) {
  double flops, eff;
  uint64_t bytes;
  if (layer->type() == graph::LayerType::kConv) {
    const auto* conv = static_cast<const graph::ConvLayer*>(layer);
    nn::ConvPass pass = forward ? nn::ConvPass::kForward : nn::ConvPass::kBackwardData;
    flops = nn::conv_flops(conv->desc(), pass) * (forward ? 1.0 : 2.0);  // data + filter
    eff = nn::conv_algo_efficiency(conv->desc(), algo, pass);
    bytes = forward ? layer->forward_bytes() : layer->backward_bytes();
  } else {
    flops = forward ? layer->forward_flops() : layer->backward_flops();
    eff = layer->compute_efficiency();
    bytes = forward ? layer->forward_bytes() : layer->backward_bytes();
  }
  machine_.run_compute(cost_.compute_time(flops, static_cast<double>(bytes), eff));
}

void Runtime::run_layer_pass(graph::Layer* layer, bool forward, const float* input,
                             const int32_t* labels, double* loss_out, StepTelemetry* tele) {
  graph::ExecContext ctx;
  ctx.real = opts_.real;
  ctx.inference = inference_mode_;
  ctx.buf = [this](const tensor::Tensor* t) { return device_ptr(t); };
  ctx.iter = iter_;
  ctx.seed = opts_.seed;
  ctx.input_data = input;
  ctx.labels = labels;
  ctx.loss_out = loss_out;
  ctx.loss_sum_out = &loss_sum_;
  ctx.loss_batch = opts_.loss_batch;

  // Dynamic convolution-workspace allocation (§3.5): measure what is free
  // *now*, after the memory techniques have run for this step.
  mem::GpuAllocator& allocator = pool_->allocator();
  std::optional<uint64_t> ws_handle;
  if (layer->type() == graph::LayerType::kConv) {
    auto* conv = static_cast<graph::ConvLayer*>(layer);
    uint64_t budget = opts_.allow_workspace ? allocator.largest_free() : 0;
    AlgoChoice choice = opts_.dynamic_workspace
                            ? choose_conv_algo(*conv, forward, budget)
                            : choose_conv_algo_static(*conv, forward, budget);
    if (choice.workspace_bytes > 0) {
      ws_handle = allocator.allocate(choice.workspace_bytes);
      if (!ws_handle) {
        // Fragmentation race: fall back to the workspace-free algorithm.
        choice.algo = nn::ConvAlgo::kDirect;
        choice.workspace_bytes = 0;
      }
    }
    ctx.conv_algo = choice.algo;
    ctx.workspace_bytes = choice.workspace_bytes;
    if (ws_handle) ctx.workspace = static_cast<float*>(allocator.ptr(*ws_handle));
    tele->algo = choice.algo;
    tele->ws_assigned = choice.workspace_bytes;
    tele->ws_max_speed = choice.best_workspace_bytes;
  }

  note_peak();
  if (forward) {
    layer->forward(ctx);
  } else {
    layer->backward(ctx);
  }
  charge_layer_time(layer, forward, ctx.conv_algo);

  if (ws_handle) allocator.deallocate(*ws_handle);
}

void Runtime::lock(const std::vector<tensor::Tensor*>& ts, bool locked) {
  for (tensor::Tensor* t : ts) {
    if (locked) {
      t->lock();
    } else {
      t->unlock();
    }
  }
}

void Runtime::note_peak() {
  uint64_t u = pool_->allocator().in_use();
  if (u > iter_peak_) iter_peak_ = u;
}

void Runtime::exec_step(const graph::Step& step, const float* input, const int32_t* labels,
                        double* loss_out) {
  graph::Layer* layer = step.layer;
  const bool fwd = step.forward;
  regenerated_.clear();

  // Label the machine-level spans this step will emit (compute, allocs and
  // any transfer stalls materialize/prefetch trigger) before they happen.
  if (auto* rec = machine_.trace()) {
    rec->set_op_context(layer->name() + (fwd ? ":f" : ":b"),
                        obs::schedule_phase_name(sched_phase_), sched_microbatch_);
  }

  auto uses = fwd ? layer->forward_uses() : layer->backward_uses();
  auto defs = fwd ? layer->forward_defs() : layer->backward_defs();

  // Materialize-and-lock one at a time: materializing a later dependency may
  // trigger eviction, which must not touch dependencies already staged.
  for (tensor::Tensor* u : uses) {
    materialize(u);
    u->lock();
  }
  for (tensor::Tensor* d : defs) {
    ensure_def(d);
    d->lock();
  }

  StepTelemetry tele;
  tele.step = step.index;
  tele.layer = layer;
  tele.forward = fwd;
  tele.device_id = opts_.device_id;
  tele.stage = opts_.stage;
  tele.replica = opts_.replica;
  tele.sched_phase = sched_phase_;
  tele.microbatch = sched_microbatch_;

  run_layer_pass(layer, fwd, fwd && layer->type() == graph::LayerType::kData ? input : nullptr,
                 labels, loss_out, &tele);

  tele.mem_in_use = pool_->allocator().in_use();
  tele.live_tensors = pool_->live_count();
  tele.clock = machine_.now();
  tele.host_in_use = pool_->host_pool().in_use();
  tele.host_peak = pool_->host_pool().peak_in_use();
  const TransferStats xfer = pool_->engine().stats();
  tele.d2h_submitted = xfer.submitted_d2h;
  tele.h2d_submitted = xfer.submitted_h2d;
  tele.d2h_completed = xfer.completed_d2h;
  tele.h2d_completed = xfer.completed_h2d;
  tele.dma_copies = xfer.dma_copies;
  tele.d2h_in_flight = pool_->engine().pending_count(TransferDir::kD2H);
  tele.h2d_in_flight = pool_->engine().pending_count(TransferDir::kH2D);
  tele.transfers_in_flight = tele.d2h_in_flight + tele.h2d_in_flight;
  tele.d2h_busy_seconds = machine_.counters().seconds_d2h;
  tele.h2d_busy_seconds = machine_.counters().seconds_h2d;
  tele.p2p_busy_seconds = machine_.counters().seconds_p2p;
  tele.compute_seconds = machine_.counters().compute_time;
  if (telemetry_capacity_ > 0 && telemetry_.size() >= telemetry_capacity_) {
    const size_t excess = telemetry_.size() - telemetry_capacity_ + 1;
    telemetry_.erase(telemetry_.begin(), telemetry_.begin() + static_cast<ptrdiff_t>(excess));
    telemetry_dropped_ += excess;
  }
  telemetry_.push_back(tele);

  lock(uses, false);
  lock(defs, false);
}

void Runtime::issue_prefetches(int step) {
  // Paper §3.3.1: at a CONV layer's backward step, asynchronously fetch what
  // the next `lookahead` checkpoint spans' backward steps need, staging every
  // host-resident dependency that fits without eviction. Under memory
  // pressure the nearest span's stages go out high-priority, so they bypass
  // any deeper speculative backlog on the H2D stream's wall clock (the
  // virtual-time schedule is unaffected by priorities).
  // Windowed pressure (not the latching under_pressure()): escalation should
  // stop once allocation traffic has moved past the contended stretch.
  const bool pressured = pool_->under_pressure_now();
  for (const Prefetcher::Entry& e : prefetcher_.plan_spans(step)) {
    tensor::Tensor* u = e.tensor;
    const TransferPriority prio = (pressured && e.span == 0) ? TransferPriority::kHigh
                                                             : TransferPriority::kNormal;
    if (u->residency == tensor::Residency::kPeer) {
      // Peer-staged dependency: stage it back over the P2P link, off the
      // host uplink entirely.
      if (pool_->peer_fetch_pending(u->uid())) continue;
      if (!pool_->prefetch_from_peer(u, prio)) return;  // no room: stop staging
      continue;
    }
    if (u->residency != tensor::Residency::kHost) continue;
    if (pool_->prefetch_pending(u->uid())) continue;
    if (!pool_->prefetch(u, prio)) return;  // no room: stop staging
  }
}

void Runtime::post_step(const graph::Step& step) {
  graph::Layer* layer = step.layer;
  const bool fwd = step.forward;
  const int nfwd = static_cast<int>(net_.route().size());

  // Memory-centric re-drop: tensors regenerated for THIS backward step are
  // dropped again unless their segment runs speed-centric (Fig. 9b).
  if (!fwd) {
    for (uint64_t uid : regenerated_) {
      tensor::Tensor* t = tensor_by_uid(uid);
      graph::Layer* prod = producer_of(t);
      int seg = prod ? plan_.segment_of(prod) : -1;
      if (seg >= 0 && !plan_.segments()[seg].speed_centric && plan_.droppable(t) &&
          liveness_.last_occurrence(uid) > step.index && t->on_device() && !t->locked()) {
        pool_->drop_tensor(t);
      }
    }
  }

  // Liveness Analysis: free tensors whose last use is this step (§3.2).
  if (opts_.use_liveness) {
    for (uint64_t uid : liveness_.free_after(step.index)) {
      tensor::Tensor* t = tensor_by_uid(uid);
      if (t->locked()) continue;
      pool_->free_peer(t);  // before free_device: discards any in-flight fetch-back
      pool_->free_device(t);
      pool_->free_host(t);
      t->residency = tensor::Residency::kNone;
    }
  }

  // Recomputation: during the forward pass, drop cheap tensors once their
  // forward consumers finished; backward will reconstruct them (§3.4).
  if (fwd && plan_.mode() != RecomputeMode::kNone &&
      step.index < static_cast<int>(drop_after_fwd_.size())) {
    for (uint64_t uid : drop_after_fwd_[step.index]) {
      tensor::Tensor* t = tensor_by_uid(uid);
      if (t->on_device() && !t->locked()) pool_->drop_tensor(t);
    }
  }

  // UTP eager offload: without the Tensor Cache, CONV outputs stream out as
  // soon as they are produced (§3.3.1). The cache replaces this with lazy,
  // pressure-driven eviction (§3.3.2).
  if (fwd && opts_.offload && !opts_.tensor_cache &&
      is_offload_target_[layer->output()->uid()] &&
      liveness_.last_occurrence(layer->output()->uid()) >= nfwd) {
    tensor::Tensor* t = layer->output();
    if (t->on_device() && !pool_->offload_pending(t->uid())) {
      pool_->offload_to_host(t, /*async=*/true);
    }
  }
  pool_->poll_offloads(step.index);

  // UTP prefetch: stage the next checkpoint span's dependencies under the
  // current backward compute (§3.3.1).
  if (!fwd && opts_.offload && opts_.async_transfers &&
      RecomputePlan::is_checkpoint_layer(layer)) {
    issue_prefetches(step.index);
  }

  note_peak();
}

// --------------------------------------------------------------------------
// lifecycle

void Runtime::initialize() {
  assert(!initialized_);
  for (const auto& l : net_.layers()) {
    auto init_param = [&](tensor::Tensor* t, bool weight) {
      pool_->alloc_device(t);
      t->residency = tensor::Residency::kDevice;
      t->lock();  // parameters are never eviction candidates
      if (!opts_.real) return;
      float* p = device_ptr(t);
      if (!p) return;
      int64_t n = t->shape().elems();
      if (!weight) {
        // Biases and BN beta start at zero; BN gamma at one.
        bool is_gamma = t->name().find(":gamma") != std::string::npos;
        for (int64_t i = 0; i < n; ++i) p[i] = is_gamma ? 1.0f : 0.0f;
        return;
      }
      // He-normal fan-in initialization for conv / FC weights, seeded per
      // tensor (FNV-1a of the name mixed with the run seed) rather than from
      // one sequential stream: a pipeline stage holding layers j..k must
      // draw exactly the bits the full net would for those layers, which a
      // positional stream cannot survive.
      uint64_t h = 1469598103934665603ull;
      for (char c : t->name()) {
        h ^= static_cast<unsigned char>(c);
        h *= 1099511628211ull;
      }
      util::Rng trng(opts_.seed * 0x9E3779B97F4A7C15ull + h);
      int64_t fan_in = t->shape().c * t->shape().h * t->shape().w;
      float stddev = std::sqrt(2.0f / static_cast<float>(fan_in > 0 ? fan_in : 1));
      for (int64_t i = 0; i < n; ++i) p[i] = trng.normal(0.0f, stddev);
    };
    const auto& params = l->params();
    for (size_t i = 0; i < params.size(); ++i) {
      bool weight = params[i]->name().find(":W") != std::string::npos;
      init_param(params[i], weight);
    }
    for (tensor::Tensor* g : l->param_grads()) {
      pool_->alloc_device(g);
      g->residency = tensor::Residency::kDevice;
      g->lock();
      if (opts_.real) {
        if (float* p = device_ptr(g)) std::memset(p, 0, g->bytes());
      }
    }
  }
  initialized_ = true;
}

void Runtime::begin_iteration() {
  if (!initialized_) initialize();
  // With retention on, microbatch passes within one global batch append to
  // the same telemetry series; a new iteration (advance_iteration) resets it.
  if (!retain_telemetry_ || fresh_iteration_) telemetry_.clear();
  fresh_iteration_ = false;
  zeroed_grads_.clear();
  iter_peak_ = pool_->allocator().in_use();
  extra_forwards_ = 0;
  loss_sum_ = 0.0;
  iter_loss_ = 0.0;
  pool_->reset_iteration_counters();
}

Runtime::StatSpan Runtime::begin_span() const {
  StatSpan s;
  s.c0 = machine_.counters();
  s.t0 = machine_.now();
  const TensorCache& cache = pool_->cache();
  s.hits0 = cache.hits();
  s.misses0 = cache.misses();
  s.dma0 = pool_->engine().stats().dma_copies;
  s.evict0 = pool_->evictions();
  s.alloc0 = pool_->alloc_count();
  s.extra0 = extra_forwards_;
  s.pstage0 = pool_->peer_stage_count();
  s.pstageb0 = pool_->peer_stage_bytes();
  s.pfetch0 = pool_->peer_fetch_count();
  s.pspill0 = pool_->peer_spill_count();
  return s;
}

IterationStats Runtime::end_span(const StatSpan& s) {
  const auto c1 = machine_.counters();
  const TensorCache& cache = pool_->cache();
  IterationStats st;
  st.loss = iter_loss_;
  st.loss_sum = loss_sum_;
  st.seconds = machine_.now() - s.t0;
  st.peak_mem = iter_peak_;
  st.bytes_d2h = c1.bytes_d2h - s.c0.bytes_d2h;
  st.bytes_h2d = c1.bytes_h2d - s.c0.bytes_h2d;
  st.extra_forwards = extra_forwards_ - s.extra0;
  st.evictions = pool_->evictions() - s.evict0;
  st.cache_hits = cache.hits() - s.hits0;
  st.cache_misses = cache.misses() - s.misses0;
  st.allocs = pool_->alloc_count() - s.alloc0;
  st.malloc_seconds = c1.malloc_time - s.c0.malloc_time;
  st.stall_seconds = c1.stall_time - s.c0.stall_time;
  st.host_peak = pool_->host_pool().peak_in_use();
  st.dma_copies = pool_->engine().stats().dma_copies - s.dma0;
  st.d2h_seconds = c1.seconds_d2h - s.c0.seconds_d2h;
  st.h2d_seconds = c1.seconds_h2d - s.c0.seconds_h2d;
  st.p2p_seconds = c1.seconds_p2p - s.c0.seconds_p2p;
  st.peer_stage_count = pool_->peer_stage_count() - s.pstage0;
  st.peer_stage_bytes = pool_->peer_stage_bytes() - s.pstageb0;
  st.peer_fetch_count = pool_->peer_fetch_count() - s.pfetch0;
  st.peer_spill_count = pool_->peer_spill_count() - s.pspill0;
  return st;
}

IterationStats Runtime::train_iteration(const float* input, const int32_t* labels) {
  begin_iteration();
  const StatSpan span = begin_span();

  for (const auto& step : net_.steps()) {
    exec_step(step, input, labels, &iter_loss_);
    post_step(step);
  }

  // Drain outstanding DMA so the next iteration starts clean.
  pool_->drain();

  IterationStats st = end_span(span);
  advance_iteration();
  return st;
}

IterationStats Runtime::forward_pass(const float* input, const int32_t* labels) {
  begin_iteration();
  const StatSpan span = begin_span();
  const int nfwd = static_cast<int>(net_.route().size());
  for (const auto& step : net_.steps()) {
    if (step.index >= nfwd) break;
    exec_step(step, input, labels, &iter_loss_);
    post_step(step);
  }
  return end_span(span);
}

IterationStats Runtime::backward_pass(const int32_t* labels) {
  const StatSpan span = begin_span();
  // Each microbatch's gradients start from zero; the caller combines the
  // per-microbatch results pairwise (util/pairwise.hpp) so M microbatches
  // reproduce the full-batch reduction tree bit for bit.
  zeroed_grads_.clear();
  const int nfwd = static_cast<int>(net_.route().size());
  for (const auto& step : net_.steps()) {
    if (step.index < nfwd) continue;
    exec_step(step, nullptr, labels, &iter_loss_);
    post_step(step);
  }
  pool_->drain();
  return end_span(span);
}

void Runtime::pin_external(tensor::Tensor* t) {
  if (!t->on_device()) {
    pool_->alloc_device(t);
    t->residency = tensor::Residency::kDevice;
  }
  t->lock();
}

void Runtime::mark_external_pending(const tensor::Tensor* t) {
  external_pending_.insert(t->uid());
}

void Runtime::mark_external_landed(const tensor::Tensor* t) {
  external_pending_.erase(t->uid());
}

IterationStats Runtime::forward_iteration(const float* input, const int32_t* labels,
                                          std::vector<float>* probs_out) {
  if (!initialized_) initialize();
  inference_mode_ = true;
  telemetry_.clear();
  zeroed_grads_.clear();
  loss_sum_ = 0.0;
  iter_peak_ = pool_->allocator().in_use();
  const auto c0 = machine_.counters();
  const double t0 = machine_.now();

  const int nfwd = static_cast<int>(net_.route().size());
  double loss = 0.0;
  for (const auto& step : net_.steps()) {
    if (step.index >= nfwd) break;
    exec_step(step, input, labels, &loss);
    // Inference liveness: free every non-persistent tensor at its last
    // FORWARD use — backward dependencies do not exist here.
    for (uint64_t uid : fwd_free_lists_[static_cast<size_t>(step.index)]) {
      tensor::Tensor* t = tensor_by_uid(uid);
      if (liveness_.is_persistent(uid) || t->locked()) continue;
      if (t == net_.loss_layer()->output()) continue;  // caller may read it
      pool_->free_peer(t);
      pool_->free_device(t);
      pool_->free_host(t);
      t->residency = tensor::Residency::kNone;
    }
    pool_->poll_offloads(step.index);
  }

  if (probs_out && opts_.real) {
    tensor::Tensor* p = net_.loss_layer()->output();
    *probs_out = read_tensor(p);
  }
  // Release the retained loss output now that it has been read.
  tensor::Tensor* p = net_.loss_layer()->output();
  if (!liveness_.is_persistent(p->uid())) {
    pool_->free_device(p);
    p->residency = tensor::Residency::kNone;
  }

  const auto c1 = machine_.counters();
  IterationStats st;
  st.loss = loss;
  st.loss_sum = loss_sum_;
  st.seconds = machine_.now() - t0;
  st.peak_mem = iter_peak_;
  st.bytes_d2h = c1.bytes_d2h - c0.bytes_d2h;
  st.bytes_h2d = c1.bytes_h2d - c0.bytes_h2d;
  st.host_peak = pool_->host_pool().peak_in_use();
  st.d2h_seconds = c1.seconds_d2h - c0.seconds_d2h;
  st.h2d_seconds = c1.seconds_h2d - c0.seconds_h2d;
  ++iter_;
  inference_mode_ = false;
  return st;
}

void Runtime::apply_sgd(float lr, float momentum, float weight_decay) {
  if (auto* rec = machine_.trace()) {
    rec->set_op_context("sgd", obs::schedule_phase_name(sched_phase_), -1);
  }
  for (const auto& l : net_.layers()) {
    const auto& params = l->params();
    const auto& grads = l->param_grads();
    for (size_t i = 0; i < params.size() && i < grads.size(); ++i) {
      tensor::Tensor* w = params[i];
      tensor::Tensor* g = grads[i];
      machine_.run_compute(cost_.bandwidth_time(3 * w->bytes()));
      if (!opts_.real) continue;
      float* wp = device_ptr(w);
      float* gp = device_ptr(g);
      if (!wp || !gp) continue;
      auto& v = momentum_[w];
      if (v.empty()) v.assign(static_cast<size_t>(w->shape().elems()), 0.0f);
      for (size_t k = 0; k < v.size(); ++k) {
        float grad = gp[k] + weight_decay * wp[k];
        v[k] = momentum * v[k] - lr * grad;
        wp[k] += v[k];
      }
    }
  }
}

std::vector<float> Runtime::read_tensor(const tensor::Tensor* t) {
  std::vector<float> out(static_cast<size_t>(t->shape().elems()), 0.0f);
  if (const float* p = device_ptr(t)) std::memcpy(out.data(), p, t->bytes());
  return out;
}

void Runtime::write_tensor(const tensor::Tensor* t, const std::vector<float>& data) {
  if (float* p = device_ptr(t)) {
    std::memcpy(p, data.data(), std::min<uint64_t>(t->bytes(), data.size() * sizeof(float)));
  }
}

}  // namespace sn::core
