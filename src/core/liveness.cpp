#include "core/liveness.hpp"

namespace sn::core {

Liveness::Liveness(const graph::Net& net, bool extend_for_recompute) {
  const auto& steps = net.steps();
  const size_t ntensors = net.registry().size();
  const int nsteps = static_cast<int>(steps.size());

  uses_.resize(nsteps);
  defs_.resize(nsteps);
  free_after_.resize(nsteps);
  first_.assign(ntensors, -1);
  last_.assign(ntensors, -1);
  persistent_.assign(ntensors, false);

  for (const auto& t : net.registry().all()) {
    auto k = t->kind();
    persistent_[t->uid()] =
        k == tensor::TensorKind::kParam || k == tensor::TensorKind::kParamGrad;
  }

  auto note = [&](uint64_t uid, int step) {
    if (persistent_[uid]) return;
    if (first_[uid] < 0) first_[uid] = step;
    if (step > last_[uid]) last_[uid] = step;
  };

  for (const auto& step : steps) {
    auto u = step.forward ? step.layer->forward_uses() : step.layer->backward_uses();
    auto d = step.forward ? step.layer->forward_defs() : step.layer->backward_defs();
    for (auto* t : u) {
      uses_[step.index].push_back(t->uid());
      note(t->uid(), step.index);
    }
    for (auto* t : d) {
      defs_[step.index].push_back(t->uid());
      note(t->uid(), step.index);
    }
  }

  if (extend_for_recompute) {
    for (const auto& t : net.registry().all()) {
      uint64_t uid = t->uid();
      if (persistent_[uid] || first_[uid] < 0) continue;
      if (t->kind() != tensor::TensorKind::kData && t->kind() != tensor::TensorKind::kAux)
        continue;
      if (t->producer_step < 0) continue;
      int bwd_of_producer = nsteps - 1 - t->producer_step;
      if (bwd_of_producer > last_[uid]) last_[uid] = bwd_of_producer;
    }
  }

  for (uint64_t uid = 0; uid < ntensors; ++uid) {
    if (last_[uid] >= 0) free_after_[last_[uid]].push_back(uid);
  }

  // The paper's construction populates each layer's out set by checking the
  // dependencies of all subsequent layers: N-1 + N-2 + ... + 1 checks.
  quadratic_checks_ = static_cast<uint64_t>(nsteps) * (nsteps - 1) / 2;
}

std::vector<uint64_t> Liveness::in_set(int step) const {
  std::vector<uint64_t> s;
  for (uint64_t uid = 0; uid < first_.size(); ++uid) {
    if (first_[uid] >= 0 && first_[uid] < step && last_[uid] >= step) s.push_back(uid);
  }
  return s;
}

std::vector<uint64_t> Liveness::out_set(int step) const {
  std::vector<uint64_t> s;
  for (uint64_t uid = 0; uid < first_.size(); ++uid) {
    if (first_[uid] >= 0 && first_[uid] <= step && last_[uid] > step) s.push_back(uid);
  }
  return s;
}

}  // namespace sn::core
