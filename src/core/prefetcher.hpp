// Prefetcher: the backward-pass lookahead policy of the Unified Tensor Pool
// (paper §3.3.1).
//
// At a CONV (checkpoint) layer's backward step, the paper asynchronously
// fetches what the *previous* CONV layer's backward span needs, hiding the
// H2D latency under the current layer's backward compute. This class is the
// pure policy: given the current step it yields, in staging order, the
// tensors the next `lookahead` checkpoint spans will read. The pool decides
// per tensor whether staging is possible (host-resident, not already in
// flight, fits without eviction) and actually moves the bytes.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "graph/net.hpp"

namespace sn::core {

class Prefetcher {
 public:
  /// One planned stage: the tensor plus which checkpoint span (0 = the span
  /// being entered next, the paper's policy; 1.. = deeper speculative
  /// lookahead) first reads it. The pool uses the span to pick the H2D
  /// stream priority: nearest-span stages are the ones backward stalls on.
  struct Entry {
    tensor::Tensor* tensor = nullptr;
    int span = 0;
  };

  /// `lookahead` = how many checkpoint backward spans ahead to stage
  /// (the paper's policy is 1: exactly the next span). 0 disables
  /// prefetching (every plan is empty); negatives are clamped to 0.
  explicit Prefetcher(const graph::Net& net, int lookahead = 1);

  /// Backward-pass dependencies of the steps after `step`, in scan order
  /// (deduplicated), stopping after `lookahead` checkpoint layers. Pure
  /// policy: no residency filtering — the caller stages what it can.
  std::vector<tensor::Tensor*> plan(int step) const;

  /// plan() with each tensor annotated by the checkpoint-span distance at
  /// which it is first read (same tensors, same order).
  std::vector<Entry> plan_spans(int step) const;

  int lookahead() const { return lookahead_; }

  /// Gate for remotely produced tensors (pipeline stage boundaries): when
  /// set, a uid the gate reports true for is skipped by every plan — its
  /// bytes live on a peer device until the P2P landing event, so a host
  /// fetch would stage stale data. The orchestrator flips the gate off once
  /// the landing is waited out.
  void set_remote_gate(std::function<bool(uint64_t)> gate) { remote_gate_ = std::move(gate); }

 private:
  const graph::Net& net_;
  int lookahead_;
  std::function<bool(uint64_t)> remote_gate_;
};

/// Per-net prefetch-lookahead default, applied when RuntimeOptions leaves
/// prefetch_lookahead at kPrefetchLookaheadAuto. The table pins what
/// bench_prefetch_lookahead measures: the linear nets (AlexNet, VGG) are
/// happiest with the paper's lookahead of exactly 1 — deeper staging
/// displaces resident tensors for no stall win — while the branchy / deep
/// zoo nets (InceptionV4, ResNet50/101/152, DenseNet) keep improving at 2+
/// because their checkpoint spans are short and fan-joins pull several
/// spans' dependencies at once. Unknown architectures get the paper's 1.
int default_prefetch_lookahead(const graph::Net& net);

}  // namespace sn::core
