// Liveness Analysis (paper §3.2).
//
// For the 2N-step execution route, compute per-step use/def tables and each
// tensor's live interval [first_occurrence, last_occurrence]. The runtime
// frees a tensor immediately after its last-use step, which reduces peak
// memory from the baseline Σ l_f + Σ l_b to Σ l_f + l_b_N.
//
// The paper constructs per-layer `in`/`out` sets by scanning all subsequent
// layers for each layer (N(N-1)/2 ≈ O(N²) dependency checks); we derive the
// same sets from the live intervals and additionally expose them in the
// paper's form (Fig. 5) for tests and the Fig. 10 bench. Parameters and
// parameter gradients are excluded: they persist across iterations.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/net.hpp"

namespace sn::core {

class Liveness {
 public:
  /// `extend_for_recompute`: when cost-aware recomputation is active, replay
  /// of a segment may read any forward tensor up to the moment its producer's
  /// own backward step completes — so data/aux lifetimes are extended to
  /// `2N-1 - producer_step` (the paper's invariant that the nearest
  /// checkpoint stays resident until its segment's backward finishes).
  explicit Liveness(const graph::Net& net, bool extend_for_recompute = false);

  /// Tensor uids read / written at step s (s indexes Net::steps()).
  const std::vector<uint64_t>& uses(int step) const { return uses_[step]; }
  const std::vector<uint64_t>& defs(int step) const { return defs_[step]; }

  /// Tensors whose last occurrence is step s — safe to free afterwards.
  const std::vector<uint64_t>& free_after(int step) const { return free_after_[step]; }

  /// Live interval of a tensor; -1 when the tensor never appears (e.g. an
  /// unused gradient) or is persistent (param / param grad).
  int first_occurrence(uint64_t uid) const { return first_[uid]; }
  int last_occurrence(uint64_t uid) const { return last_[uid]; }

  bool is_persistent(uint64_t uid) const { return persistent_[uid]; }

  /// The paper's in/out sets (Fig. 5): tensors live strictly before / after
  /// step s executes.
  std::vector<uint64_t> in_set(int step) const;
  std::vector<uint64_t> out_set(int step) const;

  int num_steps() const { return static_cast<int>(uses_.size()); }

  /// Number of pairwise dependency checks the paper's O(N²) construction
  /// would perform (kept to document and test the complexity claim).
  uint64_t quadratic_checks() const { return quadratic_checks_; }

 private:
  std::vector<std::vector<uint64_t>> uses_;
  std::vector<std::vector<uint64_t>> defs_;
  std::vector<std::vector<uint64_t>> free_after_;
  std::vector<int> first_;
  std::vector<int> last_;
  std::vector<bool> persistent_;
  uint64_t quadratic_checks_ = 0;
};

}  // namespace sn::core
