#include "core/workspace.hpp"

namespace sn::core {

namespace {
constexpr nn::ConvAlgo kAllAlgos[] = {nn::ConvAlgo::kDirect, nn::ConvAlgo::kIm2colGemm,
                                      nn::ConvAlgo::kWinograd, nn::ConvAlgo::kFftTiled};
}

AlgoChoice choose_conv_algo(const graph::ConvLayer& layer, bool forward, uint64_t budget) {
  const nn::ConvDesc& d = layer.desc();
  const nn::ConvPass pass = forward ? nn::ConvPass::kForward : nn::ConvPass::kBackwardData;
  AlgoChoice choice;
  double best_feasible = -1.0, best_any = -1.0;
  for (nn::ConvAlgo algo : kAllAlgos) {
    if (!nn::conv_algo_supported(d, algo)) continue;
    double eff = nn::conv_algo_efficiency(d, algo, pass);
    uint64_t ws = layer.workspace_bytes(algo, forward);
    if (eff > best_any) {
      best_any = eff;
      choice.best_algo = algo;
      choice.best_workspace_bytes = ws;
    }
    if (ws <= budget && eff > best_feasible) {
      best_feasible = eff;
      choice.algo = algo;
      choice.workspace_bytes = ws;
      choice.efficiency = eff;
    }
  }
  return choice;
}

AlgoChoice choose_conv_algo_static(const graph::ConvLayer& layer, bool forward, uint64_t budget) {
  const nn::ConvDesc& d = layer.desc();
  const nn::ConvPass pass = forward ? nn::ConvPass::kForward : nn::ConvPass::kBackwardData;
  AlgoChoice choice;
  choice.best_algo = nn::ConvAlgo::kIm2colGemm;
  choice.best_workspace_bytes = layer.workspace_bytes(nn::ConvAlgo::kIm2colGemm, forward);
  if (choice.best_workspace_bytes <= budget) {
    choice.algo = nn::ConvAlgo::kIm2colGemm;
    choice.workspace_bytes = choice.best_workspace_bytes;
  } else {
    choice.algo = nn::ConvAlgo::kDirect;
    choice.workspace_bytes = 0;
  }
  choice.efficiency = nn::conv_algo_efficiency(d, choice.algo, pass);
  return choice;
}

}  // namespace sn::core
