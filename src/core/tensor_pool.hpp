// Unified Tensor Pool: the per-tensor memory-state machine (paper §3.3.1).
//
// Owns the device allocator, the pinned host pool, the LRU Tensor Cache and
// the TransferEngine, and is the only component that moves a tensor between
// its placement states:
//
//     kNone ──alloc──> kDevice ──offload──> kBoth ──release──> kHost
//       ^                 │ ^                                     │ ^
//       └────free─────────┤ └────────────fetch/prefetch───────────┘ │
//                         ├──drop──> kDropped   (recompute restores)│
//                         └──stage──> kPeer ──(host spills guest)───┘
//                                       └──fetch-back──> kDevice
//
// The kPeer tier (peer-memory staging) is active only when a
// PeerStagingGroup is attached: eviction may then route a dirty tensor into
// a peer device's pool over an idle P2P link instead of the backlogged D2H
// uplink, and fetch it back the same way. The peer can spill the staged copy
// to the owner's host pool under its own pressure, degrading transparently
// to the ordinary kHost path.
//
// The pool is pure mechanism: *what* to evict comes from the cache's LRU
// order plus the hooks the orchestrator installs (is a tensor droppable by
// the recompute plan? persistent per liveness? when is its last forward
// use?). The Runtime decides when to call these transitions; the pool
// guarantees they are safe (locked tensors are never victims, device memory
// is never reclaimed under an in-flight transfer) and keeps the counters
// telemetry reads.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>

#include "core/tensor_cache.hpp"
#include "core/transfer_engine.hpp"
#include "mem/gpu_allocator.hpp"
#include "mem/host_pool.hpp"
#include "tensor/tensor.hpp"

namespace sn::core {

class PeerStagingGroup;

class UnifiedTensorPool {
 public:
  struct Config {
    bool real = false;            ///< backed pools + physical copies
    bool use_pool_allocator = true;
    bool tensor_cache = true;     ///< lazy pressure-driven eviction (§3.3.2)
    bool async_transfers = true;  ///< overlap DMA with compute
    bool pinned_host = true;
    uint64_t device_capacity = 0;
    uint64_t host_capacity = 0;
    int device_id = 0;            ///< cluster device this pool's handles live on
  };

  /// Policy callbacks the orchestrator installs (recompute / liveness live
  /// above the pool; the pool must not depend on them).
  struct Hooks {
    /// Recompute can restore this tensor without a transfer.
    std::function<bool(const tensor::Tensor*)> droppable = [](const tensor::Tensor*) {
      return false;
    };
    /// Persistent tensors (params etc.) never enter the cache.
    std::function<bool(uint64_t)> persistent = [](uint64_t) { return false; };
    /// Last forward step reading a tensor; gates the vDNN-style release point.
    std::function<int(uint64_t)> last_forward_use = [](uint64_t) { return -1; };
  };

  UnifiedTensorPool(tensor::TensorRegistry& registry, sim::Machine& machine, Config cfg,
                    Hooks hooks);
  ~UnifiedTensorPool();

  // --- state transitions ----------------------------------------------------

  /// Backing pointer in real mode (nullptr otherwise / when not resident).
  float* device_ptr(const tensor::Tensor* t);

  /// Allocate device memory, evicting LRU victims under pressure (Alg. 2
  /// LRU.out). Throws OomError when nothing more can be reclaimed.
  void alloc_device(tensor::Tensor* t);

  /// Release the device copy (waits out any in-flight transfer first).
  void free_device(tensor::Tensor* t);

  /// Evict one tensor: drop it if recompute can restore it; else stage it in
  /// a peer pool when the staging router says the P2P link beats the D2H
  /// backlog; else offload synchronously (the memory is reused immediately).
  void evict_one(tensor::Tensor* t);

  /// Copy to the host pool. `async` (with cfg.async_transfers) leaves the
  /// transfer in flight — poll_offloads() releases the device copy later;
  /// otherwise the device copy is released before returning.
  void offload_to_host(tensor::Tensor* t, bool async);

  /// Drop the device copy of a clean (kBoth) tensor, keeping the host copy.
  void release_offloaded(tensor::Tensor* t);

  /// Free both copies; only recomputation can restore the tensor.
  void drop_tensor(tensor::Tensor* t);

  /// Free the host copy (if any) — liveness end-of-life path.
  void free_host(tensor::Tensor* t);

  /// On-demand H2D: allocate, copy, wait (the consumer needs the bytes now).
  void fetch_from_host(tensor::Tensor* t);

  /// Asynchronous H2D stage of a host-resident tensor. Returns false (and
  /// does nothing) when the free device memory cannot fit it — prefetching
  /// must never trigger eviction (§3.3.1). `prio` is the H2D stream queue
  /// priority: the orchestrator raises it for the nearest backward span when
  /// the pool is under pressure, so urgent stages bypass the speculative
  /// prefetch backlog on the wall clock (virtual time is unaffected).
  bool prefetch(tensor::Tensor* t, TransferPriority prio = TransferPriority::kNormal);

  /// Wait for an in-flight prefetch of `t` (no-op when none is pending).
  void finish_prefetch(tensor::Tensor* t);

  /// A kernel is about to write `t`: any host copy is stale. Keeps the host
  /// allocation (a future offload reuses the buffer) but drops the "clean"
  /// kBoth state so pass-0 eviction cannot resurrect outdated bytes.
  void mark_dirty(tensor::Tensor* t);

  /// Sim-only in-place alias: count the tensor live without device memory.
  void adopt_alias(tensor::Tensor* t);

  /// Retire completed offloads whose tensors are past their last forward use
  /// and unlocked (the vDNN release point).
  void poll_offloads(int step);

  /// End-of-iteration: wait out all in-flight DMA, release offloaded copies.
  void drain();

  bool offload_pending(uint64_t uid) const {
    return engine_->pending(TransferDir::kD2H, uid);
  }
  bool prefetch_pending(uint64_t uid) const {
    return engine_->pending(TransferDir::kH2D, uid);
  }

  // --- peer-memory staging (active only with a PeerStagingGroup attached) ---

  /// Try to evict `t` into a peer member's pool over P2P instead of the host
  /// uplink. Synchronous (the device memory is reused immediately), like the
  /// eviction offload it replaces. Returns false — and moves nothing — when
  /// no group is attached, no peer beats the host ETA, or the tensor has an
  /// offload already in flight (the host path owns that case).
  bool stage_to_peer(tensor::Tensor* t);

  /// On-demand fetch-back of a kPeer tensor: allocate device memory, pull the
  /// bytes over the peer link (submitted on the PEER's engine; this pool's
  /// machine stalls on the arrival), release the guest slot.
  void fetch_from_peer(tensor::Tensor* t);

  /// Asynchronous fetch-back (prefetch analogue). Refuses — returns false —
  /// when the free device memory cannot fit it: staging back must never
  /// trigger eviction, exactly like prefetch(). The tensor stays kPeer until
  /// finish_peer_fetch() retires the landing.
  bool prefetch_from_peer(tensor::Tensor* t, TransferPriority prio = TransferPriority::kNormal);

  /// Wait out an in-flight peer fetch of `t` (no-op when none is pending).
  void finish_peer_fetch(tensor::Tensor* t);

  bool peer_fetch_pending(uint64_t uid) const { return peer_fetches_.count(uid) != 0; }

  /// Release `t`'s staged peer copy (and discard any in-flight fetch-back) —
  /// the liveness end-of-life path, symmetric with free_device/free_host.
  void free_peer(tensor::Tensor* t);

  // Guest side (host-pool role; called by the PeerStagingGroup / owner pool).

  /// Reserve `bytes` of free pool space for a staged guest. Never evicts and
  /// never touches the tensor cache (guests are invisible to this pool's LRU
  /// order). Returns 0 when the free space cannot fit it.
  uint64_t accept_guest(uint64_t bytes);
  void* guest_ptr(uint64_t handle) { return allocator_->ptr(handle); }
  void release_guest(uint64_t handle) { allocator_->deallocate(handle); }

  /// Spill the guest holding `owner`'s tensor `uid` (handle `handle`) to the
  /// OWNER's host pool over THIS pool's D2H engine, synchronously; the owner's
  /// tensor degrades to plain kHost. `tag` must come from the group's tag
  /// namespace (disjoint from this pool's uid-keyed D2H tags).
  void spill_guest_to_owner(UnifiedTensorPool& owner, uint64_t uid, uint64_t handle,
                            uint64_t tag);

  void set_staging_group(PeerStagingGroup* g) { group_ = g; }
  PeerStagingGroup* staging_group() const { return group_; }
  sim::Machine& machine() { return machine_; }

  // --- components & counters ------------------------------------------------

  mem::GpuAllocator& allocator() { return *allocator_; }
  const mem::GpuAllocator& allocator() const { return *allocator_; }
  mem::HostPool& host_pool() { return host_pool_; }
  const mem::HostPool& host_pool() const { return host_pool_; }
  TensorCache& cache() { return cache_; }
  const TensorCache& cache() const { return cache_; }
  TransferEngine& engine() { return *engine_; }
  const TransferEngine& engine() const { return *engine_; }

  /// Cluster device every handle this pool hands out lives on (0 when
  /// single-device); replica pools in dist:: setups each carry their own.
  int device_id() const { return cfg_.device_id; }

  uint64_t live_count() const { return live_count_; }
  uint64_t evictions() const { return evictions_; }
  uint64_t alloc_count() const { return alloc_count_; }

  // Peer-staging counters (owner-side: spills count against the owner whose
  // tensor degraded to kHost, wherever it was hosted).
  uint64_t peer_stage_count() const { return peer_stage_count_; }
  uint64_t peer_stage_bytes() const { return peer_stage_bytes_; }
  uint64_t peer_fetch_count() const { return peer_fetch_count_; }
  uint64_t peer_spill_count() const { return peer_spill_count_; }

  /// True once this iteration has had to evict: device memory is contended,
  /// so the orchestrator escalates the nearest prefetches to high priority
  /// ("prefetch > offload" on the DMA streams' wall clock).
  /// NOTE: latches for the rest of the iteration — one early eviction keeps
  /// escalating long after the contention has passed. Kept for existing
  /// callers/tests; new policy goes through under_pressure_now().
  bool under_pressure() const { return evictions_ > 0; }

  /// Windowed pressure signal: an eviction happened within the last
  /// kPressureWindowAllocs device allocations. Unlike under_pressure() this
  /// decays as allocation traffic moves on, so prefetch-priority escalation
  /// stops once contention passes, and the peer-staging router can tell a
  /// currently-squeezed pool from one that merely had a rough start.
  bool under_pressure_now() const {
    return evictions_ > 0 && alloc_count_ - last_eviction_alloc_ <= kPressureWindowAllocs;
  }
  static constexpr uint64_t kPressureWindowAllocs = 32;

  void reset_iteration_counters() {
    evictions_ = 0;
    alloc_count_ = 0;
    last_eviction_alloc_ = 0;
  }

 private:
  tensor::Tensor* by_uid(uint64_t uid) { return registry_.get(uid); }

  tensor::TensorRegistry& registry_;
  sim::Machine& machine_;
  Config cfg_;
  Hooks hooks_;
  std::unique_ptr<mem::GpuAllocator> allocator_;
  mem::HostPool host_pool_;
  TensorCache cache_;
  std::unique_ptr<TransferEngine> engine_;  ///< declared after host_pool_: the
                                            ///< DMA backend stages through it
  PeerStagingGroup* group_ = nullptr;       ///< non-null while a member

  /// In-flight asynchronous fetch-backs, keyed by tensor uid. Ordered map:
  /// drain() walks it, and wait order must be reproducible.
  struct PendingPeerFetch {
    int peer = -1;
    uint64_t tag = 0;
    sim::Event event;
    uint64_t flow = 0;
  };
  std::map<uint64_t, PendingPeerFetch> peer_fetches_;

  uint64_t live_count_ = 0;
  uint64_t evictions_ = 0;
  uint64_t alloc_count_ = 0;
  uint64_t last_eviction_alloc_ = 0;  ///< alloc_count_ at the most recent eviction
  uint64_t peer_stage_count_ = 0;
  uint64_t peer_stage_bytes_ = 0;
  uint64_t peer_fetch_count_ = 0;
  uint64_t peer_spill_count_ = 0;
};

}  // namespace sn::core
