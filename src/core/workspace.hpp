// Dynamic convolution-workspace allocation (paper §3.5).
//
// The memory left for workspaces changes at every step as liveness, UTP and
// recomputation run; the allocator therefore re-selects, per CONV pass, the
// fastest algorithm whose scratch demand fits the bytes currently free.
// Functional tensors are always prioritized — workspace is taken from what
// remains, never the other way around.
#pragma once

#include <cstdint>

#include "graph/layers.hpp"
#include "nn/conv.hpp"

namespace sn::core {

struct AlgoChoice {
  nn::ConvAlgo algo = nn::ConvAlgo::kDirect;
  uint64_t workspace_bytes = 0;
  double efficiency = 0.0;
  /// The unconstrained optimum (Fig. 12's "MAX Speed WS" series).
  nn::ConvAlgo best_algo = nn::ConvAlgo::kDirect;
  uint64_t best_workspace_bytes = 0;
};

/// Fastest memory-feasible algorithm for this conv pass under `budget`
/// free bytes. Algorithms whose workspace exceeds the budget are skipped
/// (paper: "the runtime skips convolution algorithms that require more
/// memory than it can provide"); kDirect (zero workspace) always fits.
AlgoChoice choose_conv_algo(const graph::ConvLayer& layer, bool forward, uint64_t budget);

/// The static strategy baseline frameworks use: im2col-GEMM when its buffer
/// fits, otherwise direct — no per-step adaptation.
AlgoChoice choose_conv_algo_static(const graph::ConvLayer& layer, bool forward, uint64_t budget);

}  // namespace sn::core
