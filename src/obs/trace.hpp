// Structured event tracing for the virtual-time runtime (ISSUE 7 tentpole).
//
// A TraceRecorder is a per-machine bounded ring of typed spans. Every span
// carries BOTH clocks: virtual begin/end (the sim::Machine timeline every
// schedule decision runs on) and the wall-clock instant the span was
// recorded. Recording never advances virtual time and never changes a
// scheduling decision — with no recorder attached every hook is a single
// relaxed atomic load — so traced and untraced runs are bit-identical
// (pinned by test_trace).
//
// Span taxonomy (SpanKind):
//   kCompute    — one Runtime::exec_step kernel (layer name, fwd/bwd).
//   kH2D/kD2H   — one async DMA copy on the per-direction engine stream.
//   kP2P        — one peer link copy (pipeline activation/gradient, or a
//                 collective hop); carries a flow id when it is a schedule-
//                 level send so the consumer's stall span links back to it.
//   kCollective — one all-reduce bucket's hop chain on a device (submit →
//                 ready), flow-linked to the await that consumes it.
//   kStall      — compute-stream time lost in Machine::wait_event, tagged
//                 with what it waited on (StallSource) and, for flow-linked
//                 waits, the producing span's flow id. A zero-duration stall
//                 is still recorded when it consumes a flow: the arrow must
//                 land even when the data arrived early.
//   kScheduleOp — one schedule-replay op (trainer loop) plus zero-duration
//                 markers like "drain-end" that anchor the analyzer's
//                 exposed-collective accounting.
//   kAlloc      — native cudaMalloc/cudaFree charged to the compute stream.
//
// Flow ids link producer → consumer across devices (Chrome trace s/f
// arrows): flow_id_p2p ties a pipeline send to the receiver's stall,
// flow_id_collective ties a gradient bucket's hop chain to its await.
//
// Thread-safety: schedule-side recording is single-threaded per machine (the
// trainer thread), but DMA worker threads record wall-only staging-chunk
// spans concurrently, so both rings are mutex-guarded and the Machine holds
// the recorder behind an atomic pointer (attach happens after engines spawn
// their workers).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace sn::obs {

enum class SpanKind : uint8_t {
  kCompute,
  kH2D,
  kD2H,
  kP2P,
  kCollective,
  kStall,
  kScheduleOp,
  kAlloc,
};

/// What a kStall span was waiting on (attribution bucket).
enum class StallSource : uint8_t {
  kNone,
  kTransfer,      ///< offload/prefetch DMA (single-device overlap misses)
  kPipelineRecv,  ///< upstream/downstream activation or gradient (bubble)
  kCollective,    ///< all-reduce hop chain or await (exposed collective)
};

const char* span_kind_name(SpanKind k);
const char* stall_source_name(StallSource s);

/// Name for a dist::SchedulePhase passed as int (0/1/2 → "fill"/"steady"/
/// "drain"; anything else → ""). Lives here so core code can phase-tag spans
/// without depending on the dist layer.
const char* schedule_phase_name(int phase);

// Per-device stream (Chrome tid) layout.
constexpr int kStreamCompute = 0;
constexpr int kStreamD2H = 1;
constexpr int kStreamH2D = 2;
constexpr int kStreamCollective = 3;
constexpr int kStreamSchedule = 4;
constexpr int kStreamP2PBase = 8;  ///< + peer device id

/// Flow id for a schedule-level P2P send: trainer tags are small and unique
/// per (iteration, boundary, microbatch, direction), so (tag, sender) is
/// collision-free. Collective hop sends pass flow 0 — no arrows; their
/// linkage is the bucket flow below.
uint64_t flow_id_p2p(uint64_t tag, int src_device);

/// Flow id for a gradient bucket's all-reduce on one device: `seq` is the
/// communicator's monotone bucket counter, `device` disambiguates ranks
/// (communicator groups own disjoint device sets, so this is globally
/// unique). High bit keeps the namespace disjoint from flow_id_p2p.
uint64_t flow_id_collective(uint64_t seq, int device);

/// Flow id for one peer-staging hop (evict -> peer-store, or the fetch-back):
/// `seq` is the PeerStagingGroup's monotone transfer counter, `device` the
/// sending device. Bit 61 keeps the namespace disjoint from flow_id_p2p
/// (schedule tags stay far below 2^53) and flow_id_collective (bit 62), so
/// trace_report can attribute recovered uplink time to staging arrows.
uint64_t flow_id_peer_stage(uint64_t seq, int device);

struct TraceSpan {
  SpanKind kind = SpanKind::kCompute;
  StallSource stall = StallSource::kNone;
  std::string name;
  std::string phase;       ///< schedule phase ("fill"/"steady"/"drain"), if any
  double vbegin = 0.0;     ///< virtual seconds
  double vend = 0.0;
  double wall = 0.0;       ///< wall seconds at record time (export-optional)
  int device = -1;
  int stream = kStreamCompute;
  int stage = -1;
  int replica = -1;
  int microbatch = -1;
  uint64_t flow_out = 0;   ///< this span produces flow arrows start here
  uint64_t flow_in = 0;    ///< this span consumes flow arrows end here
  uint64_t bytes = 0;
};

/// Wall-clock-only span for one staged chunk on a DMA worker thread. These
/// live in a separate ring: worker interleaving is nondeterministic, so they
/// are excluded from the deterministic (virtual-clock) export and sorted by
/// (stream, seq, chunk) when exported at all.
struct WallChunkSpan {
  int stream = 0;
  uint64_t seq = 0;
  int chunk = 0;
  uint64_t bytes = 0;
  double wbegin = 0.0;
  double wend = 0.0;
};

class TraceRecorder {
 public:
  static constexpr size_t kDefaultCapacity = 1 << 18;

  explicit TraceRecorder(size_t capacity = kDefaultCapacity);

  void set_ids(int device, int stage, int replica);
  int device() const { return device_; }

  // --- schedule-thread context (labels subsequent machine-level spans) ----
  void set_op_context(const std::string& name, const std::string& phase, int microbatch);
  void set_stall_context(StallSource src, const std::string& name, const std::string& phase,
                         int microbatch, uint64_t flow_in);
  void clear_stall_context();

  // --- recording hooks ----------------------------------------------------
  void record_compute(double vbegin, double vend);
  void record_alloc(const char* what, double vbegin, double vend, uint64_t bytes);
  void record_copy(SpanKind kind, int stream, double vbegin, double vend, uint64_t bytes,
                   uint64_t flow_out, const char* name);
  /// One Machine::wait_event. Records a kStall span when time passed OR when
  /// the pending stall context carries a flow to consume; the flow is
  /// one-shot (consumed by the first wait after set_stall_context).
  void record_wait(double vbegin, double vend);
  void record_schedule_op(const std::string& name, double vbegin, double vend,
                          const std::string& phase, int microbatch);
  /// Zero-duration kScheduleOp marker ("drain-end") the analyzer anchors on.
  void record_marker(const char* name, double vtime);
  /// DMA-worker-thread hook: wall clock only, separate ring.
  void record_wall_chunk(int stream, uint64_t seq, int chunk, uint64_t bytes, double wbegin,
                         double wend);

  void clear();
  std::vector<TraceSpan> spans() const;            ///< ring in record order
  std::vector<WallChunkSpan> wall_chunks() const;  ///< sorted (stream, seq, chunk)
  size_t dropped() const;                          ///< spans evicted by the ring cap

  /// Wall seconds since process-local epoch (steady clock).
  static double wall_now();

 private:
  void push(TraceSpan&& s);  // caller holds mu_

  size_t capacity_;
  int device_ = -1;
  int stage_ = -1;
  int replica_ = -1;

  mutable std::mutex mu_;
  std::vector<TraceSpan> ring_;
  size_t head_ = 0;      ///< next write slot once ring_ is full
  size_t dropped_ = 0;

  // op context (kCompute / kAlloc labels)
  std::string op_name_;
  std::string op_phase_;
  int op_microbatch_ = -1;
  // stall context (kStall labels)
  StallSource stall_src_ = StallSource::kNone;
  std::string stall_name_;
  std::string stall_phase_;
  int stall_microbatch_ = -1;
  uint64_t stall_flow_in_ = 0;

  mutable std::mutex wall_mu_;
  std::vector<WallChunkSpan> wall_ring_;
};

/// A trace over a device group: owns one recorder per device id. Trainers
/// attach it (machine.set_trace(&session.recorder_for(d))); exporters and
/// the analyzer walk all recorders.
class TraceSession {
 public:
  explicit TraceSession(size_t capacity_per_device = TraceRecorder::kDefaultCapacity)
      : capacity_(capacity_per_device) {}

  TraceRecorder& recorder_for(int device);
  /// Device ids with a recorder, ascending.
  std::vector<int> devices() const;
  const TraceRecorder* recorder(int device) const;
  void clear();

 private:
  size_t capacity_;
  std::map<int, std::unique_ptr<TraceRecorder>> recorders_;
};

}  // namespace sn::obs
