#include "obs/chrome_trace.hpp"

#include <set>
#include <string>
#include <utility>

#include "util/json_writer.hpp"

namespace sn::obs {

namespace {

std::string stream_name(int stream) {
  switch (stream) {
    case kStreamCompute: return "compute";
    case kStreamD2H: return "d2h";
    case kStreamH2D: return "h2d";
    case kStreamCollective: return "collective";
    case kStreamSchedule: return "schedule";
    default: break;
  }
  if (stream >= kStreamP2PBase) return "p2p->" + std::to_string(stream - kStreamP2PBase);
  return "stream" + std::to_string(stream);
}

void emit_meta(util::JsonWriter& w, const char* what, int pid, int tid, const std::string& name,
               bool with_tid) {
  w.begin_object(util::JsonWriter::kInline);
  w.key("name").value(what);
  w.key("ph").value("M");
  w.key("pid").value(pid);
  if (with_tid) w.key("tid").value(tid);
  w.key("args").begin_object();
  w.key("name").value(name);
  w.end_object();
  w.end_object();
}

void emit_span(util::JsonWriter& w, const TraceSpan& s, bool include_wall) {
  w.begin_object(util::JsonWriter::kInline);
  w.key("name").value(s.name);
  w.key("cat").value(span_kind_name(s.kind));
  w.key("ph").value("X");
  w.key("pid").value(s.device);
  w.key("tid").value(s.stream);
  w.key("ts").value_fixed(s.vbegin * 1e6, 3);
  w.key("dur").value_fixed((s.vend - s.vbegin) * 1e6, 3);
  w.key("args").begin_object();
  if (s.kind == SpanKind::kStall) w.key("stall").value(stall_source_name(s.stall));
  if (!s.phase.empty()) w.key("phase").value(s.phase);
  if (s.microbatch >= 0) w.key("microbatch").value(s.microbatch);
  if (s.stage >= 0) w.key("stage").value(s.stage);
  if (s.replica >= 0) w.key("replica").value(s.replica);
  if (s.bytes > 0) w.key("bytes").value(s.bytes);
  if (include_wall) w.key("wall_us").value_fixed(s.wall * 1e6, 3);
  w.end_object();
  w.end_object();
}

void emit_flow(util::JsonWriter& w, const char* ph, uint64_t id, const TraceSpan& s) {
  w.begin_object(util::JsonWriter::kInline);
  w.key("name").value("flow");
  w.key("cat").value("flow");
  w.key("ph").value(ph);
  if (ph[0] == 'f') w.key("bp").value("e");
  w.key("id").value(id);
  w.key("pid").value(s.device);
  w.key("tid").value(s.stream);
  // Bind inside the producing/consuming slice: its start timestamp.
  w.key("ts").value_fixed(s.vbegin * 1e6, 3);
  w.end_object();
}

}  // namespace

std::string export_chrome_trace(const TraceSession& session, const ChromeTraceOptions& opts) {
  util::JsonWriter w;
  w.begin_object();
  w.key("displayTimeUnit").value("ms");
  w.key("traceEvents").begin_array();

  // Metadata rows first: stable (device, stream) order.
  for (int dev : session.devices()) {
    const TraceRecorder* rec = session.recorder(dev);
    auto spans = rec->spans();
    std::set<int> streams;
    for (const auto& s : spans) streams.insert(s.stream);
    std::string pname = "dev" + std::to_string(dev);
    if (!spans.empty() && spans.front().stage >= 0) {
      pname += " (stage " + std::to_string(spans.front().stage);
      if (spans.front().replica >= 0) {
        pname += ", replica " + std::to_string(spans.front().replica);
      }
      pname += ")";
    }
    emit_meta(w, "process_name", dev, 0, pname, false);
    for (int st : streams) emit_meta(w, "thread_name", dev, st, stream_name(st), true);
    if (opts.include_wall && !rec->wall_chunks().empty()) {
      std::set<int> wall_streams;
      for (const auto& c : rec->wall_chunks()) wall_streams.insert(c.stream);
      for (int st : wall_streams) {
        emit_meta(w, "thread_name", dev, 100 + st, "wall:dma" + std::to_string(st), true);
      }
    }
  }

  for (int dev : session.devices()) {
    const TraceRecorder* rec = session.recorder(dev);
    for (const auto& s : rec->spans()) {
      emit_span(w, s, opts.include_wall);
      if (s.flow_out != 0) emit_flow(w, "s", s.flow_out, s);
      if (s.flow_in != 0) emit_flow(w, "f", s.flow_in, s);
    }
    if (opts.include_wall) {
      for (const auto& c : rec->wall_chunks()) {
        w.begin_object(util::JsonWriter::kInline);
        w.key("name").value("chunk#" + std::to_string(c.chunk));
        w.key("cat").value("dma_chunk");
        w.key("ph").value("X");
        w.key("pid").value(dev);
        w.key("tid").value(100 + c.stream);
        w.key("ts").value_fixed(c.wbegin * 1e6, 3);
        w.key("dur").value_fixed((c.wend - c.wbegin) * 1e6, 3);
        w.key("args").begin_object();
        w.key("seq").value(c.seq);
        w.key("bytes").value(c.bytes);
        w.end_object();
        w.end_object();
      }
    }
  }

  w.end_array();
  w.end_object();
  return w.str();
}

bool write_chrome_trace(const TraceSession& session, const std::string& path,
                        const ChromeTraceOptions& opts) {
  std::string body = export_chrome_trace(session, opts);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;
  bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
  ok = std::fputc('\n', f) != EOF && ok;
  return std::fclose(f) == 0 && ok;
}

}  // namespace sn::obs
