// obs::trace_diff — span-level attribution of the wall-time delta between
// two trace exports (ISSUE 10 tentpole).
//
// The perf-gate's trajectory_diff can say "cell X regressed 12% out of
// band", but not *why*. trace_diff answers that from the traces themselves:
// it loads two Chrome-trace JSON files (the deterministic virtual-clock
// export of obs::export_chrome_trace), aligns them span by span, and
// attributes the per-span duration deltas to buckets — compute, the four
// transfer kinds, collective, and stall split by StallSource — so a
// regression report names the bucket (and the top individual spans) that
// moved.
//
// Alignment uses schedule-op identity, not timestamps: the column-schedule
// engine replays a deterministic op list, so the k-th span with a given
// (device, stream, category, name) in the baseline corresponds to the k-th
// in the candidate even when every timestamp shifted. Spans present on only
// one side (a changed schedule, a different prefetch depth) are counted and
// attributed separately rather than force-matched.
//
// The report renders two ways: a human attribution table (render_table, the
// CI artifact) and a machine-readable JSON document (write_json, kind
// "trace_diff_report", checkable via trajectory_diff --schema-check).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace sn::util {
class JsonWriter;
class JsonValue;
}  // namespace sn::util

namespace sn::obs {

/// One attribution bucket's aligned totals. `bucket` is the span category
/// ("compute", "h2d", "d2h", "p2p", "collective", "schedule", "alloc") with
/// stalls split by source ("stall:transfer", "stall:pipeline_recv",
/// "stall:collective", "stall:none").
struct TraceDiffBucket {
  std::string bucket;
  uint64_t matched = 0;            ///< span pairs aligned across both traces
  double base_seconds = 0.0;       ///< matched spans' baseline duration
  double cand_seconds = 0.0;       ///< matched spans' candidate duration
  uint64_t base_only = 0;          ///< spans with no candidate counterpart
  uint64_t cand_only = 0;
  double base_only_seconds = 0.0;
  double cand_only_seconds = 0.0;

  /// Bucket wall-time delta including unmatched spans: what the candidate
  /// spends here beyond the baseline.
  double delta() const {
    return (cand_seconds + cand_only_seconds) - (base_seconds + base_only_seconds);
  }
};

/// One aligned span identity's delta (summed over its occurrences), for the
/// "top movers" section of the report.
struct TraceDiffSpanDelta {
  int device = -1;
  int stream = 0;
  std::string bucket;
  std::string name;
  uint64_t occurrences = 0;   ///< matched pairs under this identity
  double base_seconds = 0.0;
  double cand_seconds = 0.0;

  double delta() const { return cand_seconds - base_seconds; }
};

struct TraceDiffReport {
  std::string base_path;   ///< origin labels (file names or "<inline>")
  std::string cand_path;
  /// Buckets in fixed taxonomy order (every bucket present, zero or not),
  /// so reports diff cleanly across runs.
  std::vector<TraceDiffBucket> buckets;
  /// Span identities ranked by |delta| descending, capped at `max_movers`
  /// passed to diff_traces; ties broken by (device, stream, bucket, name).
  std::vector<TraceDiffSpanDelta> top_movers;
  uint64_t matched = 0;
  uint64_t base_only = 0;
  uint64_t cand_only = 0;
  double base_total_seconds = 0.0;  ///< all spans, both matched and not
  double cand_total_seconds = 0.0;

  double delta() const { return cand_total_seconds - base_total_seconds; }

  /// Buckets that saw at least one span on either side (table rendering).
  std::vector<TraceDiffBucket> rep_buckets_nonzero() const;

  /// Human attribution table (the CI perf-gate artifact).
  std::string render_table() const;
  /// Machine-readable document, kind "trace_diff_report".
  void write_json(util::JsonWriter& w) const;
  std::string to_json() const;
  bool save(const std::string& path) const;
};

/// Diff two parsed Chrome-trace documents (deterministic export shape:
/// duration events with cat/pid/tid; dma_chunk wall rows are ignored).
/// util::JsonError on documents that are not Chrome traces.
TraceDiffReport diff_traces(const util::JsonValue& base, const util::JsonValue& cand,
                            size_t max_movers = 10);

/// Load + diff two trace files; util::JsonError on I/O or parse failure.
TraceDiffReport diff_trace_files(const std::string& base_path, const std::string& cand_path,
                                 size_t max_movers = 10);

}  // namespace sn::obs
