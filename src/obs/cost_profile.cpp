#include "obs/cost_profile.hpp"

#include <algorithm>
#include <array>
#include <utility>

#include "obs/trace.hpp"
#include "util/json_reader.hpp"
#include "util/json_writer.hpp"

namespace sn::obs {

namespace {

// Per-device per-iteration bucket accumulator indices.
enum Bucket : size_t {
  kBCompute,
  kBH2D,
  kBD2H,
  kBP2P,
  kBCollective,
  kBStallTransfer,
  kBStallPipeline,
  kBStallCollective,
  kBucketCount,
};

const char* bucket_key(size_t b) {
  switch (b) {
    case kBCompute: return "compute";
    case kBH2D: return "h2d";
    case kBD2H: return "d2h";
    case kBP2P: return "p2p";
    case kBCollective: return "collective";
    case kBStallTransfer: return "stall_transfer";
    case kBStallPipeline: return "stall_pipeline";
    case kBStallCollective: return "stall_collective";
    default: return "?";
  }
}

void write_stat(util::JsonWriter& w, const ProfileStat& s) {
  // 17 significant digits: doubles survive the write -> parse round trip
  // bit-exactly (pinned by test_cost_profile).
  w.begin_object(util::JsonWriter::kInline);
  w.key("median").value_sci(s.median, 17);
  w.key("lo").value_sci(s.lo, 17);
  w.key("hi").value_sci(s.hi, 17);
  w.key("n").value(s.n);
  w.end_object();
}

ProfileStat read_stat(const util::JsonValue& v) {
  ProfileStat s;
  s.median = v.get("median").as_number();
  s.lo = v.get("lo").as_number();
  s.hi = v.get("hi").as_number();
  s.n = static_cast<uint64_t>(v.get("n").as_number());
  return s;
}

}  // namespace

ProfileStat ProfileStat::from_samples(std::vector<double> samples) {
  ProfileStat s;
  s.n = samples.size();
  if (samples.empty()) return s;
  std::sort(samples.begin(), samples.end());
  const size_t n = samples.size();
  s.median = n % 2 == 1 ? samples[n / 2] : 0.5 * (samples[n / 2 - 1] + samples[n / 2]);
  s.lo = samples.front();
  s.hi = samples.back();
  return s;
}

CostProfile CostProfile::from_session(const TraceSession& session) {
  // name -> (fwd samples, bwd samples), sorted by construction (std::map).
  std::map<std::string, std::pair<std::vector<double>, std::vector<double>>> layer_samples;
  CostProfile prof;

  for (int dev : session.devices()) {
    const TraceRecorder* rec = session.recorder(dev);
    const auto spans = rec->spans();

    DeviceCost dc;
    dc.device = dev;
    std::array<std::vector<double>, kBucketCount> iter_samples;
    std::array<double, kBucketCount> acc{};
    bool saw_any = false;

    auto close_iteration = [&] {
      for (size_t b = 0; b < kBucketCount; ++b) {
        iter_samples[b].push_back(acc[b]);
        acc[b] = 0.0;
      }
      dc.iterations++;
    };

    for (const auto& s : spans) {
      if (dc.stage < 0 && s.stage >= 0) dc.stage = s.stage;
      if (dc.replica < 0 && s.replica >= 0) dc.replica = s.replica;
      const double dur = s.vend - s.vbegin;
      switch (s.kind) {
        case SpanKind::kCompute: {
          saw_any = true;
          acc[kBCompute] += dur;
          // Runtime::exec_step names kernels "<layer>:f" / "<layer>:b";
          // anything else (e.g. "sgd") is device occupancy, not a layer.
          const size_t colon = s.name.rfind(':');
          if (colon != std::string::npos && colon + 2 == s.name.size()) {
            auto& ls = layer_samples[s.name.substr(0, colon)];
            if (s.name[colon + 1] == 'f') ls.first.push_back(dur);
            if (s.name[colon + 1] == 'b') ls.second.push_back(dur);
          }
          break;
        }
        case SpanKind::kH2D: saw_any = true; acc[kBH2D] += dur; break;
        case SpanKind::kD2H: saw_any = true; acc[kBD2H] += dur; break;
        case SpanKind::kP2P: saw_any = true; acc[kBP2P] += dur; break;
        case SpanKind::kCollective: saw_any = true; acc[kBCollective] += dur; break;
        case SpanKind::kStall:
          saw_any = true;
          switch (s.stall) {
            case StallSource::kTransfer: acc[kBStallTransfer] += dur; break;
            case StallSource::kPipelineRecv: acc[kBStallPipeline] += dur; break;
            case StallSource::kCollective: acc[kBStallCollective] += dur; break;
            case StallSource::kNone: break;
          }
          break;
        case SpanKind::kScheduleOp:
          // The trainers mark every iteration boundary; one marker closes
          // one occupancy sample per bucket.
          if (s.name == "drain-end") close_iteration();
          break;
        case SpanKind::kAlloc:
          break;
      }
    }
    // Marker-free traces (single-device Runtime loops) are one sample.
    if (dc.iterations == 0 && saw_any) close_iteration();

    dc.compute = ProfileStat::from_samples(std::move(iter_samples[kBCompute]));
    dc.h2d = ProfileStat::from_samples(std::move(iter_samples[kBH2D]));
    dc.d2h = ProfileStat::from_samples(std::move(iter_samples[kBD2H]));
    dc.p2p = ProfileStat::from_samples(std::move(iter_samples[kBP2P]));
    dc.collective = ProfileStat::from_samples(std::move(iter_samples[kBCollective]));
    dc.stall_transfer = ProfileStat::from_samples(std::move(iter_samples[kBStallTransfer]));
    dc.stall_pipeline = ProfileStat::from_samples(std::move(iter_samples[kBStallPipeline]));
    dc.stall_collective = ProfileStat::from_samples(std::move(iter_samples[kBStallCollective]));
    prof.add_device(std::move(dc));
  }

  for (auto& [name, fb] : layer_samples) {
    LayerCost lc;
    lc.name = name;
    lc.fwd = ProfileStat::from_samples(std::move(fb.first));
    lc.bwd = ProfileStat::from_samples(std::move(fb.second));
    prof.add_layer(std::move(lc));
  }
  return prof;
}

void CostProfile::add_layer(LayerCost lc) {
  layer_index_[lc.name] = layers_.size();
  layers_.push_back(std::move(lc));
}

void CostProfile::add_device(DeviceCost dc) { devices_.push_back(std::move(dc)); }

const LayerCost* CostProfile::layer(const std::string& name) const {
  auto it = layer_index_.find(name);
  return it == layer_index_.end() ? nullptr : &layers_[it->second];
}

bool CostProfile::layer_seconds(const std::string& name, double* fwd_seconds,
                                double* bwd_seconds) const {
  const LayerCost* lc = layer(name);
  // Only a layer observed in BOTH directions can replace the analytic
  // fwd+bwd seconds; a partial observation would skew the balance.
  if (!lc || lc->fwd.n == 0 || lc->bwd.n == 0) return false;
  *fwd_seconds = lc->fwd.median;
  *bwd_seconds = lc->bwd.median;
  return true;
}

void CostProfile::write_json(util::JsonWriter& w) const {
  w.begin_object();
  w.key("schema_version").value(1);
  w.key("kind").value("cost_profile");
  w.key("layers").begin_array();
  for (const auto& lc : layers_) {
    w.begin_object();
    w.key("name").value(lc.name);
    w.key("fwd");
    write_stat(w, lc.fwd);
    w.key("bwd");
    write_stat(w, lc.bwd);
    w.end_object();
  }
  w.end_array();
  w.key("devices").begin_array();
  for (const auto& dc : devices_) {
    w.begin_object();
    w.key("device").value(dc.device);
    w.key("stage").value(dc.stage);
    w.key("replica").value(dc.replica);
    w.key("iterations").value(dc.iterations);
    const ProfileStat* stats[kBucketCount] = {
        &dc.compute, &dc.h2d, &dc.d2h, &dc.p2p, &dc.collective,
        &dc.stall_transfer, &dc.stall_pipeline, &dc.stall_collective};
    for (size_t b = 0; b < kBucketCount; ++b) {
      w.key(bucket_key(b));
      write_stat(w, *stats[b]);
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

std::string CostProfile::to_json() const {
  util::JsonWriter w;
  write_json(w);
  return w.str();
}

bool CostProfile::save(const std::string& path) const {
  util::JsonWriter w;
  write_json(w);
  return w.save(path);
}

CostProfile CostProfile::from_json(const util::JsonValue& doc) {
  if (const util::JsonValue* kind = doc.find("kind");
      !kind || !kind->is_string() || kind->as_string() != "cost_profile") {
    throw util::JsonError("cost_profile: document kind is not \"cost_profile\"");
  }
  CostProfile prof;
  for (size_t i = 0; i < doc.get("layers").size(); ++i) {
    const util::JsonValue& v = doc.get("layers").at(i);
    LayerCost lc;
    lc.name = v.get("name").as_string();
    lc.fwd = read_stat(v.get("fwd"));
    lc.bwd = read_stat(v.get("bwd"));
    prof.add_layer(std::move(lc));
  }
  for (size_t i = 0; i < doc.get("devices").size(); ++i) {
    const util::JsonValue& v = doc.get("devices").at(i);
    DeviceCost dc;
    dc.device = static_cast<int>(v.get("device").as_number());
    dc.stage = static_cast<int>(v.get("stage").as_number());
    dc.replica = static_cast<int>(v.get("replica").as_number());
    dc.iterations = static_cast<uint64_t>(v.get("iterations").as_number());
    ProfileStat* stats[kBucketCount] = {
        &dc.compute, &dc.h2d, &dc.d2h, &dc.p2p, &dc.collective,
        &dc.stall_transfer, &dc.stall_pipeline, &dc.stall_collective};
    for (size_t b = 0; b < kBucketCount; ++b) *stats[b] = read_stat(v.get(bucket_key(b)));
    prof.add_device(std::move(dc));
  }
  return prof;
}

CostProfile CostProfile::load(const std::string& path) {
  return from_json(util::parse_json_file(path));
}

}  // namespace sn::obs
