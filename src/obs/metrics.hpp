// MetricsRegistry: named counters / gauges / fixed-bucket histograms with a
// single JSON export path (util::JsonWriter) shared with the trace exporter
// and the benches. Deterministic by construction: names iterate in sorted
// (std::map) order and histogram bucket boundaries are fixed at creation, so
// two identical runs serialize byte-identically (pinned by test_trace).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace sn::util {
class JsonWriter;
}

namespace sn::obs {

/// Fixed-boundary histogram: bucket i counts values in [bounds[i-1],
/// bounds[i]); the final bucket is the overflow [bounds.back(), inf).
struct Histogram {
  std::vector<double> bounds;    ///< ascending upper bounds
  std::vector<uint64_t> counts;  ///< size bounds.size() + 1
  uint64_t total = 0;
  double sum = 0.0;

  void observe(double v);
};

class MetricsRegistry {
 public:
  void counter_add(const std::string& name, uint64_t delta);
  void gauge_set(const std::string& name, double value);
  /// Creates the histogram on first use; later calls with different bounds
  /// keep the original boundaries (fixed-bucket contract).
  void histogram_observe(const std::string& name, const std::vector<double>& bounds, double v);

  uint64_t counter(const std::string& name) const;
  double gauge(const std::string& name) const;
  const Histogram* histogram(const std::string& name) const;

  void clear();

  /// Append `"metrics": {...}` content as one object value. The caller has
  /// already positioned the writer (after a key() or at top level).
  void write_json(util::JsonWriter& w) const;

  /// Prometheus text exposition (format 0.0.4): `# TYPE` line per metric,
  /// names prefixed "sn_" with non-[a-zA-Z0-9_] bytes mapped to '_', and
  /// histograms rendered as CUMULATIVE `_bucket{le="..."}` series plus
  /// `_sum`/`_count` (the exposition contract; the JSON export keeps raw
  /// per-bucket counts). Deterministic: same sorted-map iteration as
  /// write_json. This is the scrape surface the serving path binds — see
  /// obs::OneShotTextServer and trace_report --metrics-listen.
  std::string to_prometheus() const;

  /// The exposition name for a registry key ("spans.compute" ->
  /// "sn_spans_compute"); exposed for tests and dashboards.
  static std::string prometheus_name(const std::string& name);

 private:
  std::map<std::string, uint64_t> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace sn::obs
