#include "obs/trace_analyzer.hpp"

#include <algorithm>

#include "obs/metrics.hpp"

namespace sn::obs {

const std::vector<double>& TraceAnalyzer::stall_histogram_bounds() {
  // Fixed decades from 1µs to 100ms; pinned by test_trace.
  static const std::vector<double> bounds = {1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1};
  return bounds;
}

TraceAnalyzer::TraceAnalyzer(const TraceSession& session) {
  for (int dev : session.devices()) {
    const TraceRecorder* rec = session.recorder(dev);
    std::vector<TraceSpan> spans = rec->spans();
    Attribution& a = per_device_[dev];
    for (size_t i = 0; i < spans.size(); ++i) {
      const TraceSpan& s = spans[i];
      const double dur = s.vend - s.vbegin;
      span_counts_[s.kind]++;
      switch (s.kind) {
        case SpanKind::kCompute: a.compute_seconds += dur; break;
        case SpanKind::kAlloc: a.alloc_seconds += dur; break;
        case SpanKind::kH2D: a.h2d_seconds += dur; break;
        case SpanKind::kD2H: a.d2h_seconds += dur; break;
        case SpanKind::kP2P: a.p2p_seconds += dur; break;
        case SpanKind::kCollective:
          collective_end_ = std::max(collective_end_, s.vend);
          break;
        case SpanKind::kStall:
          a.stall_seconds += dur;
          switch (s.stall) {
            case StallSource::kPipelineRecv:
              a.bubble_seconds += dur;
              if (s.phase == "fill") a.bubble_fill_seconds += dur;
              if (s.phase == "steady") a.bubble_steady_seconds += dur;
              if (s.phase == "drain") a.bubble_drain_seconds += dur;
              break;
            case StallSource::kCollective:
              a.collective_stall_seconds += dur;
              collective_end_ = std::max(collective_end_, s.vend);
              break;
            default: a.transfer_stall_seconds += dur; break;
          }
          break;
        case SpanKind::kScheduleOp:
          if (s.name == "drain-end") {
            have_drain_marker_ = true;
            drain_end_ = std::max(drain_end_, s.vend);
          }
          break;
      }
      if (s.flow_out != 0) producers_.emplace(s.flow_out, SpanRef{dev, i});
      if (s.flow_in != 0) consumers_.emplace(s.flow_in, SpanRef{dev, i});
    }
    spans_by_device_.emplace(dev, std::move(spans));
  }
}

const TraceSpan& TraceAnalyzer::span(const SpanRef& r) const {
  return spans_by_device_.at(r.device)[r.index];
}

Attribution TraceAnalyzer::total() const {
  Attribution t;
  for (const auto& [dev, a] : per_device_) {
    t.compute_seconds += a.compute_seconds;
    t.alloc_seconds += a.alloc_seconds;
    t.stall_seconds += a.stall_seconds;
    t.transfer_stall_seconds += a.transfer_stall_seconds;
    t.bubble_seconds += a.bubble_seconds;
    t.bubble_fill_seconds += a.bubble_fill_seconds;
    t.bubble_steady_seconds += a.bubble_steady_seconds;
    t.bubble_drain_seconds += a.bubble_drain_seconds;
    t.collective_stall_seconds += a.collective_stall_seconds;
    t.h2d_seconds += a.h2d_seconds;
    t.d2h_seconds += a.d2h_seconds;
    t.p2p_seconds += a.p2p_seconds;
  }
  return t;
}

double TraceAnalyzer::exposed_collective_seconds() const {
  if (!have_drain_marker_) return 0.0;
  return std::max(0.0, collective_end_ - drain_end_);
}

std::vector<uint64_t> TraceAnalyzer::unmatched_flows() const {
  std::vector<uint64_t> out;
  for (const auto& [id, ref] : producers_) {
    if (!consumers_.count(id)) out.push_back(id);
  }
  for (const auto& [id, ref] : consumers_) {
    if (!producers_.count(id)) out.push_back(id);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<CriticalStep> TraceAnalyzer::critical_path() const {
  // Start from the latest-finishing span on any device; walk backwards
  // choosing the binding predecessor: the flow producer (for flow-linked
  // stalls) or the previous span on the same (device, stream), whichever
  // ends later — that is the dependency that set this span's start time.
  std::vector<CriticalStep> path;
  SpanRef cur{-1, 0};
  double best_end = -1.0;
  for (const auto& [dev, spans] : spans_by_device_) {
    for (size_t i = 0; i < spans.size(); ++i) {
      // Schedule-row spans shadow the machine-level work they wrap; skip.
      if (spans[i].kind == SpanKind::kScheduleOp) continue;
      if (spans[i].vend > best_end) {
        best_end = spans[i].vend;
        cur = SpanRef{dev, i};
      }
    }
  }
  if (cur.device < 0) return path;

  uint64_t via_flow = 0;
  const size_t kMaxSteps = 4096;  // cycle/degenerate-trace guard
  while (path.size() < kMaxSteps) {
    const TraceSpan& s = span(cur);
    path.push_back(CriticalStep{s.device, s.kind, s.stall, s.name, s.vbegin, s.vend, via_flow});
    via_flow = 0;

    // Candidate 1: previous span on the same (device, stream) ending at or
    // before this span's start (record order is time order per stream).
    bool have_prev = false;
    SpanRef prev{cur.device, 0};
    const auto& spans = spans_by_device_.at(cur.device);
    for (size_t i = cur.index; i-- > 0;) {
      if (spans[i].kind == SpanKind::kScheduleOp) continue;
      if (spans[i].stream != s.stream) continue;
      if (spans[i].vend <= s.vbegin + 1e-12) {
        prev = SpanRef{cur.device, i};
        have_prev = true;
      }
      break;  // nearest same-stream predecessor only
    }
    // Candidate 2: the flow producer (cross-device dependency).
    bool have_flow = false;
    SpanRef flow_src{-1, 0};
    if (s.flow_in != 0) {
      auto it = producers_.find(s.flow_in);
      if (it != producers_.end()) {
        flow_src = it->second;
        have_flow = true;
      }
    }
    if (have_flow && (!have_prev || span(flow_src).vend >= span(prev).vend)) {
      via_flow = s.flow_in;
      cur = flow_src;
    } else if (have_prev) {
      cur = prev;
    } else {
      break;
    }
  }
  std::reverse(path.begin(), path.end());
  return path;
}

void TraceAnalyzer::fill_metrics(MetricsRegistry& m) const {
  for (const auto& [kind, count] : span_counts_) {
    m.counter_add(std::string("spans.") + span_kind_name(kind), count);
  }
  m.counter_add("flows.produced", producers_.size());
  m.counter_add("flows.consumed", consumers_.size());
  m.counter_add("flows.unmatched", unmatched_flows().size());

  Attribution t = total();
  m.gauge_set("attr.compute_seconds", t.compute_seconds);
  m.gauge_set("attr.alloc_seconds", t.alloc_seconds);
  m.gauge_set("attr.stall_seconds", t.stall_seconds);
  m.gauge_set("attr.transfer_stall_seconds", t.transfer_stall_seconds);
  m.gauge_set("attr.bubble_seconds", t.bubble_seconds);
  m.gauge_set("attr.bubble_fill_seconds", t.bubble_fill_seconds);
  m.gauge_set("attr.bubble_steady_seconds", t.bubble_steady_seconds);
  m.gauge_set("attr.bubble_drain_seconds", t.bubble_drain_seconds);
  m.gauge_set("attr.collective_stall_seconds", t.collective_stall_seconds);
  m.gauge_set("attr.exposed_collective_seconds", exposed_collective_seconds());

  for (const auto& [dev, spans] : spans_by_device_) {
    for (const TraceSpan& s : spans) {
      if (s.kind != SpanKind::kStall) continue;
      m.histogram_observe("stall_duration_seconds", stall_histogram_bounds(),
                          s.vend - s.vbegin);
    }
  }
}

}  // namespace sn::obs
