// obs::CostProfile — observed per-layer / per-device cost structure lifted
// out of a TraceSession (ISSUE 10 tentpole).
//
// The partitioner balances stages on the analytic sim::CostModel roofline,
// but the Runtime charges what it actually *chose* — convolutions pick a
// per-step algorithm whose efficiency differs from the static default, and
// exposed transfer/collective time is a property of the schedule, not the
// FLOP count. A CostProfile closes that loop: it aggregates the recorded
// spans into
//
//   * per-LAYER forward/backward kernel seconds — every kCompute span is
//     named "<layer>:f" / "<layer>:b" by Runtime::exec_step, so one layer
//     accumulates one sample per execution (microbatches, iterations and
//     re-materializations all count; that is the point — remat-heavy
//     schedules observe the forward twice);
//   * per-DEVICE occupancy buckets (compute, H2D, D2H, P2P, collective,
//     stall split by StallSource), one sample per iteration, split at the
//     "drain-end" markers the trainers record (a marker-free single-device
//     trace is one sample).
//
// Every aggregate is a ProfileStat {median, lo, hi, n} — the same dispersion
// shape the perf-trajectory harness records — so a profile captured on a
// noisy run still yields a robust balance input. Profiles persist through
// util::JsonWriter and load back through util::JsonValue; doubles round-trip
// bit-exactly (17-significant-digit scientific notation), pinned by
// test_cost_profile.
//
// The consumer seam is graph::NetPartitioner's LayerCostFn: a loaded profile
// wrapped in that lambda (the trainers' cost_profile config field does it)
// replaces the analytic per-layer seconds in the cut DP with observed
// medians; layers the profile never saw fall back to the roofline. Passing
// no profile keeps the analytic path byte-identical.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace sn::util {
class JsonWriter;
class JsonValue;
}  // namespace sn::util

namespace sn::obs {

class TraceSession;

/// Robust dispersion over n samples: median with the observed [lo, hi] range.
struct ProfileStat {
  double median = 0.0;
  double lo = 0.0;
  double hi = 0.0;
  uint64_t n = 0;

  static ProfileStat from_samples(std::vector<double> samples);
};

/// Observed kernel seconds of one layer, per execution at the traced
/// microbatch size (directly comparable to NetPartitioner's analytic
/// per-layer seconds: the trainers cut the probe net at microbatch size).
struct LayerCost {
  std::string name;
  ProfileStat fwd;
  ProfileStat bwd;
};

/// Observed per-iteration occupancy of one device (stall split by source).
struct DeviceCost {
  int device = -1;
  int stage = -1;
  int replica = -1;
  uint64_t iterations = 0;  ///< drain-end markers seen (1 for marker-free traces)
  ProfileStat compute;
  ProfileStat h2d;
  ProfileStat d2h;
  ProfileStat p2p;
  ProfileStat collective;
  ProfileStat stall_transfer;
  ProfileStat stall_pipeline;
  ProfileStat stall_collective;
};

class CostProfile {
 public:
  /// Aggregate a recorded session (see file comment for the sample rules).
  static CostProfile from_session(const TraceSession& session);

  /// Parse a document produced by write_json; util::JsonError on malformed
  /// or wrong-kind input.
  static CostProfile from_json(const util::JsonValue& doc);
  /// Load + parse a saved profile; util::JsonError on I/O or parse failure.
  static CostProfile load(const std::string& path);

  /// Serialize as one JSON object value (caller has positioned the writer).
  void write_json(util::JsonWriter& w) const;
  std::string to_json() const;
  bool save(const std::string& path) const;

  /// Layers sorted by name; devices sorted by id (deterministic export).
  const std::vector<LayerCost>& layers() const { return layers_; }
  const std::vector<DeviceCost>& devices() const { return devices_; }
  const LayerCost* layer(const std::string& name) const;

  /// Observed median seconds for `name`; false (outputs untouched) when the
  /// profile has no complete fwd+bwd observation for that layer. Wrap this
  /// in a graph::LayerCostFn lambda to guide the partitioner (the trainers'
  /// cost_profile config field does exactly that).
  bool layer_seconds(const std::string& name, double* fwd_seconds, double* bwd_seconds) const;

  /// Assembly hooks for tests and synthetic profiles. Keep layers sorted by
  /// name and devices by id if byte-stable serialization matters.
  void add_layer(LayerCost lc);
  void add_device(DeviceCost dc);

 private:
  std::vector<LayerCost> layers_;
  std::vector<DeviceCost> devices_;
  std::map<std::string, size_t> layer_index_;
};

}  // namespace sn::obs
