// Chrome-trace-event JSON exporter (Perfetto-loadable).
//
// Mapping: pid = device, tid = stream (obs::kStream* layout), complete spans
// as ph:"X" with ts/dur on the VIRTUAL clock in microseconds, flow arrows as
// ph:"s"/"f" (bp:"e") keyed by the span flow ids. process_name/thread_name
// metadata rows label devices "dev0 (stage S, replica R)" and streams
// compute/d2h/h2d/collective/schedule/p2p->N.
//
// include_wall=false produces the deterministic export test_trace pins:
// wall stamps are stripped from args and the wall-clock DMA staging-chunk
// rows are omitted, so two identical runs serialize byte-identically.
// include_wall=true adds a "wall_us" arg per span and one extra thread row
// per DMA stream (tid 100+stream) holding the staging-chunk spans on the
// wall clock.
#pragma once

#include <string>

#include "obs/trace.hpp"

namespace sn::obs {

struct ChromeTraceOptions {
  bool include_wall = true;
};

std::string export_chrome_trace(const TraceSession& session, const ChromeTraceOptions& opts = {});

/// Export straight to `path`; false on I/O failure.
bool write_chrome_trace(const TraceSession& session, const std::string& path,
                        const ChromeTraceOptions& opts = {});

}  // namespace sn::obs
