#include "obs/trace_diff.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <tuple>
#include <utility>

#include "util/json_reader.hpp"
#include "util/json_writer.hpp"

namespace sn::obs {

namespace {

/// Fixed bucket taxonomy, report order. Unknown categories (a future
/// SpanKind) append after these in name order.
const char* const kBucketOrder[] = {
    "compute", "h2d", "d2h", "p2p", "collective",
    "stall:transfer", "stall:pipeline_recv", "stall:collective", "stall:none",
    "schedule", "alloc",
};

/// Span identity: the deterministic export emits spans in record order per
/// device, so the k-th occurrence of (pid, tid, bucket, name) corresponds
/// across traces (schedule-op identity).
using SpanKey = std::tuple<int, int, std::string, std::string>;

struct SideTotals {
  std::vector<double> durations;  ///< seconds, document order
};

/// Duration spans of one trace keyed by identity; `total` sums everything.
void collect(const util::JsonValue& doc, std::map<SpanKey, SideTotals>* out, double* total,
             const std::string& origin) {
  const util::JsonValue* events = doc.find("traceEvents");
  if (!events || !events->is_array()) {
    throw util::JsonError("trace_diff: " + origin + " is not a Chrome trace (no traceEvents)");
  }
  for (size_t i = 0; i < events->size(); ++i) {
    const util::JsonValue& e = events->at(i);
    const util::JsonValue* ph = e.find("ph");
    if (!ph || !ph->is_string() || ph->as_string() != "X") continue;  // meta / flow rows
    std::string cat = e.get("cat").as_string();
    if (cat == "dma_chunk") continue;  // wall-clock-only rows: nondeterministic
    if (cat == "stall") {
      const util::JsonValue* args = e.find("args");
      const util::JsonValue* src = args ? args->find("stall") : nullptr;
      cat += ":" + (src && src->is_string() ? src->as_string() : std::string("none"));
    }
    const double dur = e.get("dur").as_number() * 1e-6;  // exported in microseconds
    SpanKey key{static_cast<int>(e.get("pid").as_number()),
                static_cast<int>(e.get("tid").as_number()), std::move(cat),
                e.get("name").as_string()};
    (*out)[std::move(key)].durations.push_back(dur);
    *total += dur;
  }
}

std::string fmt(const char* f, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, f, v);
  return buf;
}

}  // namespace

TraceDiffReport diff_traces(const util::JsonValue& base, const util::JsonValue& cand,
                            size_t max_movers) {
  TraceDiffReport rep;
  std::map<SpanKey, SideTotals> bspans, cspans;
  collect(base, &bspans, &rep.base_total_seconds, "baseline");
  collect(cand, &cspans, &rep.cand_total_seconds, "candidate");

  std::map<std::string, TraceDiffBucket> buckets;
  for (const char* b : kBucketOrder) buckets[b].bucket = b;
  std::vector<TraceDiffSpanDelta> movers;

  // Walk the key union (std::map keeps it deterministic).
  auto bi = bspans.begin();
  auto ci = cspans.begin();
  auto handle = [&](const SpanKey& key, const SideTotals* b, const SideTotals* c) {
    const auto& [device, stream, bucket_name, span_name] = key;
    TraceDiffBucket& bucket = buckets[bucket_name];
    if (bucket.bucket.empty()) bucket.bucket = bucket_name;
    const size_t nb = b ? b->durations.size() : 0;
    const size_t nc = c ? c->durations.size() : 0;
    const size_t m = std::min(nb, nc);
    TraceDiffSpanDelta d;
    d.device = device;
    d.stream = stream;
    d.bucket = bucket_name;
    d.name = span_name;
    d.occurrences = m;
    for (size_t k = 0; k < m; ++k) {
      d.base_seconds += b->durations[k];
      d.cand_seconds += c->durations[k];
    }
    bucket.matched += m;
    bucket.base_seconds += d.base_seconds;
    bucket.cand_seconds += d.cand_seconds;
    rep.matched += m;
    for (size_t k = m; k < nb; ++k) bucket.base_only_seconds += b->durations[k];
    for (size_t k = m; k < nc; ++k) bucket.cand_only_seconds += c->durations[k];
    bucket.base_only += nb - m;
    bucket.cand_only += nc - m;
    rep.base_only += nb - m;
    rep.cand_only += nc - m;
    if (m > 0 && d.delta() != 0.0) movers.push_back(std::move(d));
  };
  while (bi != bspans.end() || ci != cspans.end()) {
    if (ci == cspans.end() || (bi != bspans.end() && bi->first < ci->first)) {
      handle(bi->first, &bi->second, nullptr);
      ++bi;
    } else if (bi == bspans.end() || ci->first < bi->first) {
      handle(ci->first, nullptr, &ci->second);
      ++ci;
    } else {
      handle(bi->first, &bi->second, &ci->second);
      ++bi, ++ci;
    }
  }

  // Fixed taxonomy order first, then any unknown categories by name.
  for (const char* b : kBucketOrder) {
    rep.buckets.push_back(buckets[b]);
    buckets.erase(b);
  }
  for (auto& [name, bucket] : buckets) rep.buckets.push_back(std::move(bucket));

  std::stable_sort(movers.begin(), movers.end(),
                   [](const TraceDiffSpanDelta& a, const TraceDiffSpanDelta& b) {
                     const double da = std::fabs(a.delta()), db = std::fabs(b.delta());
                     if (da != db) return da > db;
                     return std::tie(a.device, a.stream, a.bucket, a.name) <
                            std::tie(b.device, b.stream, b.bucket, b.name);
                   });
  if (movers.size() > max_movers) movers.resize(max_movers);
  rep.top_movers = std::move(movers);
  return rep;
}

TraceDiffReport diff_trace_files(const std::string& base_path, const std::string& cand_path,
                                 size_t max_movers) {
  TraceDiffReport rep = diff_traces(util::parse_json_file(base_path),
                                    util::parse_json_file(cand_path), max_movers);
  rep.base_path = base_path;
  rep.cand_path = cand_path;
  return rep;
}

std::string TraceDiffReport::render_table() const {
  std::string out;
  out += "trace_diff: baseline=" + (base_path.empty() ? "<inline>" : base_path) +
         " candidate=" + (cand_path.empty() ? "<inline>" : cand_path) + "\n";
  out += "spans: matched=" + std::to_string(matched) +
         " base_only=" + std::to_string(base_only) +
         " cand_only=" + std::to_string(cand_only) + "\n";
  out += "total: base=" + fmt("%.6f", base_total_seconds) + "s cand=" +
         fmt("%.6f", cand_total_seconds) + "s delta=" + fmt("%+.6f", delta()) + "s";
  if (base_total_seconds > 0.0) {
    out += " (" + fmt("%+.2f", 100.0 * delta() / base_total_seconds) + "%)";
  }
  out += "\n\n";
  char line[256];
  std::snprintf(line, sizeof line, "%-22s %9s %14s %14s %14s\n", "bucket", "matched",
                "base_s", "cand_s", "delta_s");
  out += line;
  for (const auto& b : rep_buckets_nonzero()) {
    std::snprintf(line, sizeof line, "%-22s %9llu %14.6f %14.6f %+14.6f\n", b.bucket.c_str(),
                  static_cast<unsigned long long>(b.matched),
                  b.base_seconds + b.base_only_seconds, b.cand_seconds + b.cand_only_seconds,
                  b.delta());
    out += line;
  }
  if (!top_movers.empty()) {
    out += "\ntop movers:\n";
    for (const auto& m : top_movers) {
      std::snprintf(line, sizeof line,
                    "  dev%d/tid%d %-14s %-24s n=%llu base=%.6f cand=%.6f delta=%+.6f\n",
                    m.device, m.stream, m.bucket.c_str(), m.name.c_str(),
                    static_cast<unsigned long long>(m.occurrences), m.base_seconds,
                    m.cand_seconds, m.delta());
      out += line;
    }
  }
  return out;
}

std::vector<TraceDiffBucket> TraceDiffReport::rep_buckets_nonzero() const {
  std::vector<TraceDiffBucket> out;
  for (const auto& b : buckets) {
    if (b.matched || b.base_only || b.cand_only) out.push_back(b);
  }
  return out;
}

void TraceDiffReport::write_json(util::JsonWriter& w) const {
  w.begin_object();
  w.key("schema_version").value(1);
  w.key("kind").value("trace_diff_report");
  w.key("baseline").value(base_path.empty() ? "<inline>" : base_path);
  w.key("candidate").value(cand_path.empty() ? "<inline>" : cand_path);
  w.key("spans").begin_object(util::JsonWriter::kInline);
  w.key("matched").value(matched);
  w.key("base_only").value(base_only);
  w.key("cand_only").value(cand_only);
  w.end_object();
  w.key("total").begin_object(util::JsonWriter::kInline);
  w.key("base_seconds").value_sci(base_total_seconds, 9);
  w.key("cand_seconds").value_sci(cand_total_seconds, 9);
  w.key("delta_seconds").value_sci(delta(), 9);
  w.end_object();
  w.key("buckets").begin_array();
  for (const auto& b : buckets) {
    w.begin_object(util::JsonWriter::kInline);
    w.key("bucket").value(b.bucket);
    w.key("matched").value(b.matched);
    w.key("base_seconds").value_sci(b.base_seconds, 9);
    w.key("cand_seconds").value_sci(b.cand_seconds, 9);
    w.key("base_only").value(b.base_only);
    w.key("cand_only").value(b.cand_only);
    w.key("base_only_seconds").value_sci(b.base_only_seconds, 9);
    w.key("cand_only_seconds").value_sci(b.cand_only_seconds, 9);
    w.key("delta_seconds").value_sci(b.delta(), 9);
    w.end_object();
  }
  w.end_array();
  w.key("top_movers").begin_array();
  for (const auto& m : top_movers) {
    w.begin_object(util::JsonWriter::kInline);
    w.key("device").value(m.device);
    w.key("stream").value(m.stream);
    w.key("bucket").value(m.bucket);
    w.key("name").value(m.name);
    w.key("occurrences").value(m.occurrences);
    w.key("base_seconds").value_sci(m.base_seconds, 9);
    w.key("cand_seconds").value_sci(m.cand_seconds, 9);
    w.key("delta_seconds").value_sci(m.delta(), 9);
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

std::string TraceDiffReport::to_json() const {
  util::JsonWriter w;
  write_json(w);
  return w.str();
}

bool TraceDiffReport::save(const std::string& path) const {
  util::JsonWriter w;
  write_json(w);
  return w.save(path);
}

}  // namespace sn::obs
