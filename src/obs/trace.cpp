#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>

namespace sn::obs {

const char* span_kind_name(SpanKind k) {
  switch (k) {
    case SpanKind::kCompute: return "compute";
    case SpanKind::kH2D: return "h2d";
    case SpanKind::kD2H: return "d2h";
    case SpanKind::kP2P: return "p2p";
    case SpanKind::kCollective: return "collective";
    case SpanKind::kStall: return "stall";
    case SpanKind::kScheduleOp: return "schedule";
    case SpanKind::kAlloc: return "alloc";
  }
  return "?";
}

const char* stall_source_name(StallSource s) {
  switch (s) {
    case StallSource::kNone: return "none";
    case StallSource::kTransfer: return "transfer";
    case StallSource::kPipelineRecv: return "pipeline_recv";
    case StallSource::kCollective: return "collective";
  }
  return "?";
}

const char* schedule_phase_name(int phase) {
  switch (phase) {
    case 0: return "fill";
    case 1: return "steady";
    case 2: return "drain";
    default: return "";
  }
}

uint64_t flow_id_p2p(uint64_t tag, int src_device) {
  return (tag << 8) | (static_cast<uint64_t>(src_device) & 0xff);
}

uint64_t flow_id_collective(uint64_t seq, int device) {
  return (1ull << 62) | (seq << 8) | (static_cast<uint64_t>(device) & 0xff);
}

uint64_t flow_id_peer_stage(uint64_t seq, int device) {
  return (1ull << 61) | (seq << 8) | (static_cast<uint64_t>(device) & 0xff);
}

double TraceRecorder::wall_now() {
  using clock = std::chrono::steady_clock;
  static const clock::time_point epoch = clock::now();
  return std::chrono::duration<double>(clock::now() - epoch).count();
}

TraceRecorder::TraceRecorder(size_t capacity) : capacity_(capacity < 8 ? 8 : capacity) {
  ring_.reserve(std::min<size_t>(capacity_, 4096));
}

void TraceRecorder::set_ids(int device, int stage, int replica) {
  std::lock_guard<std::mutex> lk(mu_);
  device_ = device;
  stage_ = stage;
  replica_ = replica;
}

void TraceRecorder::set_op_context(const std::string& name, const std::string& phase,
                                   int microbatch) {
  std::lock_guard<std::mutex> lk(mu_);
  op_name_ = name;
  op_phase_ = phase;
  op_microbatch_ = microbatch;
}

void TraceRecorder::set_stall_context(StallSource src, const std::string& name,
                                      const std::string& phase, int microbatch,
                                      uint64_t flow_in) {
  std::lock_guard<std::mutex> lk(mu_);
  stall_src_ = src;
  stall_name_ = name;
  stall_phase_ = phase;
  stall_microbatch_ = microbatch;
  stall_flow_in_ = flow_in;
}

void TraceRecorder::clear_stall_context() {
  std::lock_guard<std::mutex> lk(mu_);
  stall_src_ = StallSource::kNone;
  stall_name_.clear();
  stall_phase_.clear();
  stall_microbatch_ = -1;
  stall_flow_in_ = 0;
}

void TraceRecorder::push(TraceSpan&& s) {
  s.device = device_;
  s.stage = stage_;
  s.replica = replica_;
  s.wall = wall_now();
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(s));
  } else {
    ring_[head_] = std::move(s);
    head_ = (head_ + 1) % capacity_;
    dropped_++;
  }
}

void TraceRecorder::record_compute(double vbegin, double vend) {
  std::lock_guard<std::mutex> lk(mu_);
  TraceSpan s;
  s.kind = SpanKind::kCompute;
  s.name = op_name_.empty() ? "compute" : op_name_;
  s.phase = op_phase_;
  s.microbatch = op_microbatch_;
  s.vbegin = vbegin;
  s.vend = vend;
  s.stream = kStreamCompute;
  push(std::move(s));
}

void TraceRecorder::record_alloc(const char* what, double vbegin, double vend, uint64_t bytes) {
  std::lock_guard<std::mutex> lk(mu_);
  TraceSpan s;
  s.kind = SpanKind::kAlloc;
  s.name = what;
  s.phase = op_phase_;
  s.microbatch = op_microbatch_;
  s.vbegin = vbegin;
  s.vend = vend;
  s.stream = kStreamCompute;
  s.bytes = bytes;
  push(std::move(s));
}

void TraceRecorder::record_copy(SpanKind kind, int stream, double vbegin, double vend,
                                uint64_t bytes, uint64_t flow_out, const char* name) {
  std::lock_guard<std::mutex> lk(mu_);
  TraceSpan s;
  s.kind = kind;
  s.name = name;
  s.vbegin = vbegin;
  s.vend = vend;
  s.stream = stream;
  s.bytes = bytes;
  s.flow_out = flow_out;
  push(std::move(s));
}

void TraceRecorder::record_wait(double vbegin, double vend) {
  std::lock_guard<std::mutex> lk(mu_);
  bool stalled = vend > vbegin;
  if (!stalled && stall_flow_in_ == 0) return;
  TraceSpan s;
  s.kind = SpanKind::kStall;
  s.stall = stall_src_ == StallSource::kNone ? StallSource::kTransfer : stall_src_;
  s.name = stall_name_.empty() ? "wait" : stall_name_;
  s.phase = stall_phase_;
  s.microbatch = stall_microbatch_;
  s.vbegin = vbegin;
  s.vend = vend;
  s.stream = kStreamCompute;
  s.flow_in = stall_flow_in_;
  stall_flow_in_ = 0;  // one-shot: the first wait consumes the arrow
  push(std::move(s));
}

void TraceRecorder::record_schedule_op(const std::string& name, double vbegin, double vend,
                                       const std::string& phase, int microbatch) {
  std::lock_guard<std::mutex> lk(mu_);
  TraceSpan s;
  s.kind = SpanKind::kScheduleOp;
  s.name = name;
  s.phase = phase;
  s.microbatch = microbatch;
  s.vbegin = vbegin;
  s.vend = vend;
  s.stream = kStreamSchedule;
  push(std::move(s));
}

void TraceRecorder::record_marker(const char* name, double vtime) {
  std::lock_guard<std::mutex> lk(mu_);
  TraceSpan s;
  s.kind = SpanKind::kScheduleOp;
  s.name = name;
  s.vbegin = vtime;
  s.vend = vtime;
  s.stream = kStreamSchedule;
  push(std::move(s));
}

void TraceRecorder::record_wall_chunk(int stream, uint64_t seq, int chunk, uint64_t bytes,
                                      double wbegin, double wend) {
  std::lock_guard<std::mutex> lk(wall_mu_);
  if (wall_ring_.size() >= capacity_) return;  // cap, never unbounded
  WallChunkSpan s;
  s.stream = stream;
  s.seq = seq;
  s.chunk = chunk;
  s.bytes = bytes;
  s.wbegin = wbegin;
  s.wend = wend;
  wall_ring_.push_back(s);
}

void TraceRecorder::clear() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    ring_.clear();
    head_ = 0;
    dropped_ = 0;
  }
  std::lock_guard<std::mutex> lk(wall_mu_);
  wall_ring_.clear();
}

std::vector<TraceSpan> TraceRecorder::spans() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<TraceSpan> out;
  out.reserve(ring_.size());
  // Oldest-first: once the ring wrapped, head_ is the oldest slot.
  for (size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(head_ + i) % ring_.size()]);
  }
  return out;
}

std::vector<WallChunkSpan> TraceRecorder::wall_chunks() const {
  std::lock_guard<std::mutex> lk(wall_mu_);
  std::vector<WallChunkSpan> out = wall_ring_;
  std::sort(out.begin(), out.end(), [](const WallChunkSpan& a, const WallChunkSpan& b) {
    if (a.stream != b.stream) return a.stream < b.stream;
    if (a.seq != b.seq) return a.seq < b.seq;
    return a.chunk < b.chunk;
  });
  return out;
}

size_t TraceRecorder::dropped() const {
  std::lock_guard<std::mutex> lk(mu_);
  return dropped_;
}

TraceRecorder& TraceSession::recorder_for(int device) {
  auto it = recorders_.find(device);
  if (it == recorders_.end()) {
    it = recorders_.emplace(device, std::make_unique<TraceRecorder>(capacity_)).first;
    it->second->set_ids(device, -1, -1);
  }
  return *it->second;
}

std::vector<int> TraceSession::devices() const {
  std::vector<int> out;
  out.reserve(recorders_.size());
  for (const auto& [d, _] : recorders_) out.push_back(d);
  return out;
}

const TraceRecorder* TraceSession::recorder(int device) const {
  auto it = recorders_.find(device);
  return it == recorders_.end() ? nullptr : it->second.get();
}

void TraceSession::clear() {
  for (auto& [_, r] : recorders_) r->clear();
}

}  // namespace sn::obs
