#include "obs/metrics_serve.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <stdexcept>

namespace sn::obs {

OneShotTextServer::OneShotTextServer(int port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) throw std::runtime_error("OneShotTextServer: socket() failed");
  int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(fd_, 1) != 0) {
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error("OneShotTextServer: cannot bind 127.0.0.1:" +
                             std::to_string(port));
  }
  socklen_t len = sizeof addr;
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len) == 0) {
    port_ = ntohs(addr.sin_port);
  }
}

OneShotTextServer::~OneShotTextServer() {
  if (fd_ >= 0) ::close(fd_);
}

bool OneShotTextServer::serve_once(const std::string& body) {
  const int conn = ::accept(fd_, nullptr, nullptr);
  if (conn < 0) return false;
  // Drain whatever request head arrived; one read is enough for a scraper's
  // GET line and we never parse it.
  char scratch[1024];
  (void)::read(conn, scratch, sizeof scratch);
  std::string resp =
      "HTTP/1.0 200 OK\r\n"
      "Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n"
      "Content-Length: " + std::to_string(body.size()) + "\r\n"
      "Connection: close\r\n\r\n" + body;
  size_t off = 0;
  while (off < resp.size()) {
    const ssize_t n = ::write(conn, resp.data() + off, resp.size() - off);
    if (n <= 0) {
      ::close(conn);
      return false;
    }
    off += static_cast<size_t>(n);
  }
  ::close(conn);
  return true;
}

}  // namespace sn::obs
