#include "obs/metrics.hpp"

#include <algorithm>

#include "util/json_writer.hpp"

namespace sn::obs {

void Histogram::observe(double v) {
  size_t i = std::upper_bound(bounds.begin(), bounds.end(), v) - bounds.begin();
  counts[i]++;
  total++;
  sum += v;
}

void MetricsRegistry::counter_add(const std::string& name, uint64_t delta) {
  counters_[name] += delta;
}

void MetricsRegistry::gauge_set(const std::string& name, double value) {
  gauges_[name] = value;
}

void MetricsRegistry::histogram_observe(const std::string& name,
                                        const std::vector<double>& bounds, double v) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    Histogram h;
    h.bounds = bounds;
    h.counts.assign(bounds.size() + 1, 0);
    it = histograms_.emplace(name, std::move(h)).first;
  }
  it->second.observe(v);
}

uint64_t MetricsRegistry::counter(const std::string& name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

double MetricsRegistry::gauge(const std::string& name) const {
  auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second;
}

const Histogram* MetricsRegistry::histogram(const std::string& name) const {
  auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

void MetricsRegistry::clear() {
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

void MetricsRegistry::write_json(util::JsonWriter& w) const {
  w.begin_object();
  w.key("counters").begin_object();
  for (const auto& [name, v] : counters_) w.key(name).value(v);
  w.end_object();
  w.key("gauges").begin_object();
  for (const auto& [name, v] : gauges_) w.key(name).value_sci(v, 9);
  w.end_object();
  w.key("histograms").begin_object();
  for (const auto& [name, h] : histograms_) {
    w.key(name).begin_object();
    w.key("bounds").begin_array(util::JsonWriter::kInline);
    for (double b : h.bounds) w.value_sci(b, 6);
    w.end_array();
    w.key("counts").begin_array(util::JsonWriter::kInline);
    for (uint64_t c : h.counts) w.value(c);
    w.end_array();
    w.key("total").value(h.total);
    w.key("sum").value_sci(h.sum, 9);
    w.end_object();
  }
  w.end_object();
  w.end_object();
}

}  // namespace sn::obs
