#include "obs/metrics.hpp"

#include <algorithm>
#include <cstdio>

#include "util/json_writer.hpp"

namespace sn::obs {

void Histogram::observe(double v) {
  size_t i = std::upper_bound(bounds.begin(), bounds.end(), v) - bounds.begin();
  counts[i]++;
  total++;
  sum += v;
}

void MetricsRegistry::counter_add(const std::string& name, uint64_t delta) {
  counters_[name] += delta;
}

void MetricsRegistry::gauge_set(const std::string& name, double value) {
  gauges_[name] = value;
}

void MetricsRegistry::histogram_observe(const std::string& name,
                                        const std::vector<double>& bounds, double v) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    Histogram h;
    h.bounds = bounds;
    h.counts.assign(bounds.size() + 1, 0);
    it = histograms_.emplace(name, std::move(h)).first;
  }
  it->second.observe(v);
}

uint64_t MetricsRegistry::counter(const std::string& name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

double MetricsRegistry::gauge(const std::string& name) const {
  auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second;
}

const Histogram* MetricsRegistry::histogram(const std::string& name) const {
  auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

void MetricsRegistry::clear() {
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

std::string MetricsRegistry::prometheus_name(const std::string& name) {
  std::string out = "sn_";
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out += ok ? c : '_';
  }
  return out;
}

namespace {

std::string prom_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

}  // namespace

std::string MetricsRegistry::to_prometheus() const {
  std::string out;
  for (const auto& [name, v] : counters_) {
    const std::string p = prometheus_name(name);
    out += "# TYPE " + p + " counter\n";
    out += p + " " + std::to_string(v) + "\n";
  }
  for (const auto& [name, v] : gauges_) {
    const std::string p = prometheus_name(name);
    out += "# TYPE " + p + " gauge\n";
    out += p + " " + prom_double(v) + "\n";
  }
  for (const auto& [name, h] : histograms_) {
    const std::string p = prometheus_name(name);
    out += "# TYPE " + p + " histogram\n";
    uint64_t cum = 0;
    for (size_t i = 0; i < h.bounds.size(); ++i) {
      cum += h.counts[i];
      out += p + "_bucket{le=\"" + prom_double(h.bounds[i]) + "\"} " + std::to_string(cum) +
             "\n";
    }
    cum += h.counts.empty() ? 0 : h.counts.back();
    out += p + "_bucket{le=\"+Inf\"} " + std::to_string(cum) + "\n";
    out += p + "_sum " + prom_double(h.sum) + "\n";
    out += p + "_count " + std::to_string(h.total) + "\n";
  }
  return out;
}

void MetricsRegistry::write_json(util::JsonWriter& w) const {
  w.begin_object();
  w.key("counters").begin_object();
  for (const auto& [name, v] : counters_) w.key(name).value(v);
  w.end_object();
  w.key("gauges").begin_object();
  for (const auto& [name, v] : gauges_) w.key(name).value_sci(v, 9);
  w.end_object();
  w.key("histograms").begin_object();
  for (const auto& [name, h] : histograms_) {
    w.key(name).begin_object();
    w.key("bounds").begin_array(util::JsonWriter::kInline);
    for (double b : h.bounds) w.value_sci(b, 6);
    w.end_array();
    w.key("counts").begin_array(util::JsonWriter::kInline);
    for (uint64_t c : h.counts) w.value(c);
    w.end_array();
    w.key("total").value(h.total);
    w.key("sum").value_sci(h.sum, 9);
    w.end_object();
  }
  w.end_object();
  w.end_object();
}

}  // namespace sn::obs
