// obs::OneShotTextServer — a minimal loopback scrape surface for the
// Prometheus exposition (ISSUE 10 tentpole).
//
// The future inference server will own a real HTTP listener; until then the
// tools need *something* a scraper (or curl, or a test) can hit to pull
// MetricsRegistry::to_prometheus() output. This is deliberately tiny: bind
// one loopback TCP socket, accept one connection, write one HTTP/1.0
// response (Content-Type text/plain; version=0.0.4), close. No threads, no
// request parsing beyond draining the request head, no keep-alive — the
// caller decides whether to loop (trace_report --metrics-listen serves one
// scrape per invocation; tests bind port 0 for an ephemeral port).
#pragma once

#include <string>

namespace sn::obs {

class OneShotTextServer {
 public:
  /// Bind 127.0.0.1:`port` (0 = kernel-assigned ephemeral port) and listen.
  /// Throws std::runtime_error when the socket cannot be bound.
  explicit OneShotTextServer(int port);
  ~OneShotTextServer();

  OneShotTextServer(const OneShotTextServer&) = delete;
  OneShotTextServer& operator=(const OneShotTextServer&) = delete;

  /// The actually-bound port (resolves port 0 requests).
  int port() const { return port_; }

  /// Block for one connection, serve `body` as the full response, close the
  /// connection. Returns false on accept/write failure (the listener stays
  /// usable for another call either way).
  bool serve_once(const std::string& body);

 private:
  int fd_ = -1;
  int port_ = 0;
};

}  // namespace sn::obs
