// TraceAnalyzer: walks a recorded span DAG (per-stream order + flow edges)
// and attributes timeline seconds to {compute, exposed transfer,
// bubble-by-phase, exposed collective} — the same quantities
// core::IterationStats reports as aggregate scalars, derived independently
// from the spans. test_trace reconciles the two within epsilon on
// single-device, pipeline and hybrid runs, which makes the bubble/overlap
// accounting self-auditing: a mis-charged wait shows up as a reconciliation
// failure, not a silently wrong scalar.
//
// Contracts this leans on (all pinned by the recording hooks):
//   * Every compute-stream advance is exactly one of {kCompute, kAlloc,
//     kStall} — so per device Σ durations == machine clock motion.
//   * Bubble == Σ kStall(kPipelineRecv), phase-split by the span's phase tag.
//   * Exposed collective == max vend over {kCollective chain spans,
//     kStall(kCollective) spans} minus the "drain-end" marker, clamped at 0 —
//     algebraically the trainers' max(0, ar_end_max - drain_end).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/trace.hpp"

namespace sn::obs {

class MetricsRegistry;

/// Per-device (or summed) second-by-kind attribution.
struct Attribution {
  double compute_seconds = 0.0;          ///< Σ kCompute
  double alloc_seconds = 0.0;            ///< Σ kAlloc (native malloc/free)
  double stall_seconds = 0.0;            ///< Σ kStall, every source
  double transfer_stall_seconds = 0.0;   ///< kStall(kTransfer): exposed DMA
  double bubble_seconds = 0.0;           ///< kStall(kPipelineRecv)
  double bubble_fill_seconds = 0.0;
  double bubble_steady_seconds = 0.0;
  double bubble_drain_seconds = 0.0;
  double collective_stall_seconds = 0.0; ///< kStall(kCollective)
  double h2d_seconds = 0.0;              ///< Σ kH2D copy occupancy
  double d2h_seconds = 0.0;
  double p2p_seconds = 0.0;              ///< Σ kP2P link occupancy (sent)
};

/// One hop of the per-iteration critical path (latest-finishing span walked
/// backwards; via_flow != 0 marks a cross-device jump along a flow edge).
struct CriticalStep {
  int device = -1;
  SpanKind kind = SpanKind::kCompute;
  StallSource stall = StallSource::kNone;
  std::string name;
  double vbegin = 0.0;
  double vend = 0.0;
  uint64_t via_flow = 0;
};

class TraceAnalyzer {
 public:
  explicit TraceAnalyzer(const TraceSession& session);

  const std::map<int, Attribution>& device_attribution() const { return per_device_; }
  /// Element-wise sum of every device's attribution.
  Attribution total() const;

  /// Latest "drain-end" marker across devices (0 when none was recorded).
  double drain_end() const { return drain_end_; }
  /// Collective virtual time extending past the drain (the trainers'
  /// allreduce_exposed_seconds); 0 without a drain-end anchor.
  double exposed_collective_seconds() const;

  /// Critical path, earliest hop first.
  std::vector<CriticalStep> critical_path() const;

  // --- flow audit ----------------------------------------------------------
  size_t flows_produced() const { return producers_.size(); }
  size_t flows_consumed() const { return consumers_.size(); }
  /// Flow ids with a producer but no consumer, or vice versa (sorted).
  std::vector<uint64_t> unmatched_flows() const;

  /// Export the attribution + flow audit into a registry: counters
  /// (span totals per kind, flow pairing), gauges (attribution seconds) and
  /// the pinned-bucket stall-duration histogram.
  void fill_metrics(MetricsRegistry& m) const;

  /// Fixed stall-duration histogram bounds (seconds) — pinned by test_trace.
  static const std::vector<double>& stall_histogram_bounds();

 private:
  struct SpanRef {
    int device;
    size_t index;  ///< into spans_by_device_ at device
  };
  const TraceSpan& span(const SpanRef& r) const;

  std::map<int, std::vector<TraceSpan>> spans_by_device_;
  std::map<int, Attribution> per_device_;
  std::map<uint64_t, SpanRef> producers_;  ///< flow id -> producing span
  std::map<uint64_t, SpanRef> consumers_;  ///< flow id -> consuming span
  double drain_end_ = 0.0;
  bool have_drain_marker_ = false;
  double collective_end_ = 0.0;  ///< max vend over collective chain + stalls
  std::map<SpanKind, uint64_t> span_counts_;
};

}  // namespace sn::obs
