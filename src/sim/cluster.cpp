#include "sim/cluster.hpp"

#include <cassert>
#include <stdexcept>
#include <string>

namespace sn::sim {

LinkSpec nvlink_link_spec() {
  LinkSpec l;
  l.name = "NVLink2";
  l.bandwidth = 25.0e9;
  l.latency_s = 5e-6;
  return l;
}

LinkSpec pcie_p2p_link_spec() {
  LinkSpec l;
  l.name = "PCIe-P2P";
  l.bandwidth = 10.0e9;
  l.latency_s = 15e-6;
  return l;
}

ClusterSpec nvlink_cluster_spec(int devices) {
  ClusterSpec c;
  c.device = titan_xp_spec();
  c.link = nvlink_link_spec();
  c.devices = devices;
  return c;
}

ClusterSpec pcie_cluster_spec(int devices) {
  ClusterSpec c;
  c.device = k40c_spec();
  c.link = pcie_p2p_link_spec();
  c.devices = devices;
  return c;
}

GridView::GridView(Cluster& cluster, int stages, int replicas)
    : cluster_(cluster), stages_(stages), replicas_(replicas) {
  if (stages < 1 || replicas < 1) {
    throw std::invalid_argument("GridView: stages and replicas must be >= 1");
  }
  if (stages * replicas != cluster.size()) {
    throw std::invalid_argument("GridView: stages * replicas (" +
                                std::to_string(stages * replicas) +
                                ") must equal the cluster size (" +
                                std::to_string(cluster.size()) + ")");
  }
}

int GridView::device(int stage, int replica) const {
  assert(stage >= 0 && stage < stages_ && replica >= 0 && replica < replicas_);
  return stage * replicas_ + replica;
}

Machine& GridView::machine(int stage, int replica) {
  return cluster_.machine(device(stage, replica));
}

std::vector<int> GridView::replica_group(int stage) const {
  std::vector<int> ids(static_cast<size_t>(replicas_));
  for (int r = 0; r < replicas_; ++r) ids[static_cast<size_t>(r)] = device(stage, r);
  return ids;
}

std::vector<int> GridView::pipeline_column(int replica) const {
  std::vector<int> ids(static_cast<size_t>(stages_));
  for (int s = 0; s < stages_; ++s) ids[static_cast<size_t>(s)] = device(s, replica);
  return ids;
}

Cluster::Cluster(ClusterSpec spec) : spec_(std::move(spec)) {
  if (spec_.devices < 1) throw std::invalid_argument("Cluster: need at least one device");
  machines_.reserve(static_cast<size_t>(spec_.devices));
  for (int d = 0; d < spec_.devices; ++d) {
    machines_.push_back(std::make_unique<Machine>(spec_.device, d, this));
  }
  links_.resize(static_cast<size_t>(spec_.devices) * spec_.devices);
}

Machine& Cluster::machine(int device) {
  assert(device >= 0 && device < size());
  return *machines_[static_cast<size_t>(device)];
}

const Machine& Cluster::machine(int device) const {
  assert(device >= 0 && device < size());
  return *machines_[static_cast<size_t>(device)];
}

double Cluster::p2p_seconds(uint64_t bytes) const {
  return spec_.link.latency_s + static_cast<double>(bytes) / spec_.link.bandwidth;
}

Event Cluster::p2p_copy(int src, int dst, uint64_t bytes, double not_before) {
  assert(src != dst && "P2P copy needs two distinct devices");
  double done = link(src, dst).enqueue(p2p_seconds(bytes), not_before);
  return Event{done};
}

double Cluster::now() const {
  double t = 0.0;
  for (const auto& m : machines_) {
    if (m->now() > t) t = m->now();
  }
  return t;
}

void Cluster::reset() {
  for (auto& m : machines_) m->reset();
  for (auto& l : links_) l.reset();
}

// Lives here rather than machine.cpp so machine.hpp need not include the
// cluster header it forward-declares.
Event Machine::p2p_copy(int dst, uint64_t bytes, double not_before) {
  assert(cluster_ && "p2p_copy requires cluster membership");
  counters_.bytes_p2p += bytes;
  counters_.copies_p2p++;
  counters_.seconds_p2p += cluster_->p2p_seconds(bytes);
  return cluster_->p2p_copy(device_id_, dst, bytes, not_before);
}

double Machine::p2p_seconds(uint64_t bytes) const {
  assert(cluster_ && "p2p_seconds requires cluster membership");
  return cluster_->p2p_seconds(bytes);
}

}  // namespace sn::sim
