// Analytic cost model: converts op descriptions (FLOPs, bytes touched,
// efficiency) into virtual seconds on a DeviceSpec.
//
// The model follows the standard roofline form: an op is either
// throughput-bound (flops / (peak * efficiency)) or bandwidth-bound
// (bytes / effective_bw), whichever is larger, plus a fixed launch overhead.
// Compute-heavy layers (CONV, FC) are throughput-bound; POOL/ACT/LRN/BN are
// bandwidth-bound — exactly the asymmetry Fig. 8 of the paper documents and
// that cost-aware recomputation exploits.
#pragma once

#include <cstdint>

#include "sim/device_spec.hpp"

namespace sn::sim {

class CostModel {
 public:
  explicit CostModel(DeviceSpec spec) : spec_(std::move(spec)) {}

  const DeviceSpec& spec() const { return spec_; }

  /// Roofline time for one kernel.
  /// `efficiency` is the fraction of peak FLOP/s the op sustains.
  double compute_time(double flops, double bytes, double efficiency) const {
    double t_flops = efficiency > 0.0 ? flops / (spec_.peak_flops * efficiency) : 0.0;
    double t_mem = static_cast<double>(bytes) / (spec_.mem_bw * kMemEfficiency);
    return spec_.launch_overhead_s + (t_flops > t_mem ? t_flops : t_mem);
  }

  /// Time for a purely bandwidth-bound kernel (elementwise / normalization).
  double bandwidth_time(uint64_t bytes) const { return compute_time(0.0, static_cast<double>(bytes), 1.0); }

  /// PCIe transfer time (same formula the Machine uses; exposed so planners
  /// can reason about overlap without enqueueing).
  double transfer_time(uint64_t bytes, bool pinned) const {
    double bw = spec_.pcie_h2d_pinned * (pinned ? 1.0 : spec_.pageable_factor);
    return spec_.dma_latency_s + static_cast<double>(bytes) / bw;
  }

  /// Fraction of peak DRAM bandwidth that streaming kernels sustain.
  static constexpr double kMemEfficiency = 0.75;

 private:
  DeviceSpec spec_;
};

}  // namespace sn::sim
