// Virtual-time execution machine: one compute stream plus independent H2D and
// D2H DMA streams, mirroring a GPU with dual copy engines.
//
// The runtime drives this machine instead of wall-clock time: kernel launches
// advance the compute timeline; offload/prefetch enqueue asynchronous copies
// on the DMA timelines and return events; waiting on an event stalls compute
// until the copy's completion timestamp. Overlap therefore falls out of the
// model exactly as on hardware: a copy enqueued early enough finishes "for
// free" under subsequent compute.
#pragma once

#include <atomic>
#include <cstdint>

#include "sim/device_spec.hpp"

namespace sn::obs {
class TraceRecorder;
}

namespace sn::sim {

class Cluster;

/// Completion timestamp of an asynchronous operation (virtual seconds).
struct Event {
  double done_at = 0.0;
};

/// A single in-order timeline (compute stream or one DMA engine).
class Stream {
 public:
  /// Enqueue work of `duration` seconds that may not start before
  /// `not_before`; returns the completion time.
  double enqueue(double duration, double not_before) {
    double start = busy_until_ > not_before ? busy_until_ : not_before;
    busy_until_ = start + duration;
    busy_seconds_ += duration;
    return busy_until_;
  }

  double busy_until() const { return busy_until_; }
  /// Cumulative seconds this stream spent occupied (per-stream telemetry).
  double busy_seconds() const { return busy_seconds_; }
  void reset() {
    busy_until_ = 0.0;
    busy_seconds_ = 0.0;
  }

 private:
  double busy_until_ = 0.0;
  double busy_seconds_ = 0.0;
};

enum class CopyDir { kH2D, kD2H };

/// The machine's DMA copy engines as named streams. With `engines == 2`
/// (the default, matching dual-copy-engine GPUs) each direction owns an
/// independent in-order stream, so H2D prefetch traffic and D2H offload
/// traffic overlap in virtual time. With `engines == 1` both directions
/// share one stream and serialize — the baseline the stream-overlap bench
/// quantifies against. Per-stream occupancy is always accounted to the
/// direction that enqueued it, even on a shared engine.
class StreamSet {
 public:
  explicit StreamSet(int engines) : engines_(engines < 1 ? 1 : (engines > 2 ? 2 : engines)) {}

  Stream& stream(CopyDir dir) {
    return streams_[engines_ == 1 ? 0 : (dir == CopyDir::kH2D ? 0 : 1)];
  }
  const Stream& stream(CopyDir dir) const {
    return streams_[engines_ == 1 ? 0 : (dir == CopyDir::kH2D ? 0 : 1)];
  }

  int engines() const { return engines_; }

  void reset() {
    for (Stream& s : streams_) s.reset();
  }

 private:
  int engines_;
  Stream streams_[2];
};

/// Telemetry counters the benches read (Table 3 communication volumes etc.).
struct MachineCounters {
  uint64_t bytes_h2d = 0;
  uint64_t bytes_d2h = 0;
  uint64_t bytes_p2p = 0;      ///< bytes this device SENT over peer links
  uint64_t copies_h2d = 0;
  uint64_t copies_d2h = 0;
  uint64_t copies_p2p = 0;
  uint64_t native_mallocs = 0;
  uint64_t native_frees = 0;
  double compute_time = 0.0;   ///< time the compute stream spent busy
  double malloc_time = 0.0;    ///< compute-stream time lost to native alloc/free
  double stall_time = 0.0;     ///< compute-stream time lost waiting on events
  double seconds_h2d = 0.0;    ///< DMA-engine seconds occupied by H2D copies
  double seconds_d2h = 0.0;    ///< DMA-engine seconds occupied by D2H copies
  double seconds_p2p = 0.0;    ///< link seconds occupied by copies this device SENT
};

class Machine {
 public:
  explicit Machine(DeviceSpec spec) : spec_(std::move(spec)), dma_(spec_.copy_engines) {}

  /// A cluster member: `cluster` owns the P2P link fabric this machine's
  /// p2p_copy() routes through (set only by sim::Cluster).
  Machine(DeviceSpec spec, int device_id, Cluster* cluster)
      : spec_(std::move(spec)), device_id_(device_id), cluster_(cluster),
        dma_(spec_.copy_engines) {}

  const DeviceSpec& spec() const { return spec_; }
  int device_id() const { return device_id_; }

  /// Current virtual time = head of the compute timeline.
  double now() const { return compute_.busy_until(); }

  /// Run a kernel of `seconds` on the compute stream.
  void run_compute(double seconds);

  /// Charge a native cudaMalloc/cudaFree on the compute stream (these
  /// synchronize the device, which is exactly why the paper's pool matters).
  void native_malloc(uint64_t bytes);
  void native_free();

  /// Enqueue an asynchronous copy; returns its completion event.
  Event async_copy(CopyDir dir, uint64_t bytes, bool pinned);

  /// Enqueue an asynchronous copy to peer device `dst` over the cluster's
  /// directed link; the transfer may not start before `not_before` (the
  /// sender-side data dependency). Requires cluster membership.
  Event p2p_copy(int dst, uint64_t bytes, double not_before);

  /// Block the compute stream until `e` has completed.
  void wait_event(const Event& e);

  /// True if `e` completed at or before current virtual time.
  bool query_event(const Event& e) const { return e.done_at <= now(); }

  double copy_seconds(CopyDir dir, uint64_t bytes, bool pinned) const;

  /// Link seconds a P2P transfer of `bytes` occupies (cluster members only).
  double p2p_seconds(uint64_t bytes) const;

  const MachineCounters& counters() const { return counters_; }
  const StreamSet& dma_streams() const { return dma_; }

  /// Owning cluster (nullptr when standalone). Routing layers read link
  /// occupancy through it; single-device runtimes have no peers to route to.
  Cluster* cluster() const { return cluster_; }

  void reset();

  /// Attach/detach an observability recorder. Atomic because DMA worker
  /// threads read it while the driving thread may swap it; recording is
  /// wall-clock-only bookkeeping and never perturbs virtual time.
  void set_trace(obs::TraceRecorder* rec) { trace_.store(rec, std::memory_order_release); }
  obs::TraceRecorder* trace() const { return trace_.load(std::memory_order_acquire); }

 private:
  DeviceSpec spec_;
  int device_id_ = 0;
  Cluster* cluster_ = nullptr;  ///< non-null for cluster members only
  Stream compute_;
  StreamSet dma_;               ///< per-direction copy-engine streams
  MachineCounters counters_;
  std::atomic<obs::TraceRecorder*> trace_{nullptr};
};

}  // namespace sn::sim
