#include "sim/machine.hpp"

#include "obs/trace.hpp"

namespace sn::sim {

DeviceSpec k40c_spec() {
  DeviceSpec s;
  s.name = "K40c-sim";
  s.dram_bytes = 12ull << 30;
  s.peak_flops = 4.29e12;
  s.mem_bw = 288.0e9;
  return s;
}

DeviceSpec titan_xp_spec() {
  DeviceSpec s;
  s.name = "TITANXp-sim";
  s.dram_bytes = 12ull << 30;
  s.peak_flops = 12.15e12;
  s.mem_bw = 547.0e9;
  return s;
}

void Machine::run_compute(double seconds) {
  compute_.enqueue(seconds, compute_.busy_until());
  counters_.compute_time += seconds;
  if (auto* rec = trace()) rec->record_compute(now() - seconds, now());
}

void Machine::native_malloc(uint64_t bytes) {
  double t = spec_.malloc_base_s +
             spec_.malloc_per_gb_s * (static_cast<double>(bytes) / (1024.0 * 1024.0 * 1024.0));
  compute_.enqueue(t, compute_.busy_until());
  counters_.native_mallocs++;
  counters_.malloc_time += t;
  if (auto* rec = trace()) rec->record_alloc("malloc", now() - t, now(), bytes);
}

void Machine::native_free() {
  compute_.enqueue(spec_.free_base_s, compute_.busy_until());
  counters_.native_frees++;
  counters_.malloc_time += spec_.free_base_s;
  if (auto* rec = trace()) rec->record_alloc("free", now() - spec_.free_base_s, now(), 0);
}

double Machine::copy_seconds(CopyDir dir, uint64_t bytes, bool pinned) const {
  double bw = dir == CopyDir::kH2D ? spec_.pcie_h2d_pinned : spec_.pcie_d2h_pinned;
  if (!pinned) bw *= spec_.pageable_factor;
  return spec_.dma_latency_s + static_cast<double>(bytes) / bw;
}

Event Machine::async_copy(CopyDir dir, uint64_t bytes, bool pinned) {
  double seconds = copy_seconds(dir, bytes, pinned);
  double done = dma_.stream(dir).enqueue(seconds, now());
  if (dir == CopyDir::kH2D) {
    counters_.bytes_h2d += bytes;
    counters_.copies_h2d++;
    counters_.seconds_h2d += seconds;
  } else {
    counters_.bytes_d2h += bytes;
    counters_.copies_d2h++;
    counters_.seconds_d2h += seconds;
  }
  if (auto* rec = trace()) {
    bool h2d = dir == CopyDir::kH2D;
    rec->record_copy(h2d ? obs::SpanKind::kH2D : obs::SpanKind::kD2H,
                     h2d ? obs::kStreamH2D : obs::kStreamD2H, done - seconds, done, bytes, 0,
                     h2d ? "h2d" : "d2h");
  }
  return Event{done};
}

void Machine::wait_event(const Event& e) {
  double t = now();
  if (e.done_at > t) {
    counters_.stall_time += e.done_at - t;
    compute_.enqueue(e.done_at - t, t);
  }
  if (auto* rec = trace()) rec->record_wait(t, now());
}

void Machine::reset() {
  compute_.reset();
  dma_.reset();
  counters_ = MachineCounters{};
}

}  // namespace sn::sim
