// Simulated GPU device descriptors.
//
// The paper evaluates on a 12 GB NVIDIA K40c (memory experiments, Tables 4/5)
// and a TITAN Xp (speed curves, Fig. 14). We model each as a small set of
// published-spec-derived constants; see DESIGN.md §6 for the calibration
// rationale. Absolute times are model-derived, but all *relative* effects the
// paper studies (overlap, bandwidth ratios, malloc overhead, capacity limits)
// are faithfully represented.
#pragma once

#include <cstdint>
#include <string>

namespace sn::sim {

struct DeviceSpec {
  std::string name;

  /// Device DRAM capacity in bytes (the budget all policies schedule against).
  uint64_t dram_bytes = 12ull << 30;

  /// Peak fp32 throughput in FLOP/s; per-op efficiency factors are applied by
  /// the cost model.
  double peak_flops = 4.29e12;

  /// Device memory bandwidth in bytes/s (bounds elementwise layers).
  double mem_bw = 288.0e9;

  /// PCIe effective bandwidths (paper §3.3.2: ~8 GB/s pinned CPU<->GPU;
  /// §2.2: pageable transfers lose >= 50%).
  double pcie_h2d_pinned = 8.0e9;
  double pcie_d2h_pinned = 8.0e9;
  double pageable_factor = 0.5;

  /// Native allocator latency model: cudaMalloc synchronizes the device and
  /// costs base + per-byte; cudaFree costs a flat latency (paper §3.2.1:
  /// ResNet50 wastes 36.28% of step time on native alloc/free).
  double malloc_base_s = 250e-6;
  double malloc_per_gb_s = 25e-6;
  double free_base_s = 120e-6;

  /// Fixed kernel-launch overhead per layer op.
  double launch_overhead_s = 5e-6;

  /// Latency component of any DMA transfer.
  double dma_latency_s = 10e-6;

  /// Independent DMA copy engines. 2 models the dual-engine GPUs the paper
  /// evaluates (H2D and D2H proceed concurrently); 1 serializes both
  /// directions through a single engine — kept as the A/B baseline the
  /// stream-overlap bench compares against.
  int copy_engines = 2;
};

/// The K40c-class device used for all memory-capacity experiments.
DeviceSpec k40c_spec();

/// The TITAN-Xp-class device used for the Fig. 14 speed curves.
DeviceSpec titan_xp_spec();

/// A modeled device-to-device interconnect link (one direction). The paper's
/// machine is single-GPU; these extend its published-spec calibration style
/// to the multi-device clusters the dist/ layer simulates.
struct LinkSpec {
  std::string name;
  double bandwidth = 10.0e9;  ///< bytes/s, per direction
  double latency_s = 10e-6;   ///< fixed per-transfer launch + hop latency
};

/// NVLink-2.0-class link: ~25 GB/s per direction, low launch latency.
LinkSpec nvlink_link_spec();

/// PCIe-switch P2P path: ~10 GB/s effective, higher latency than NVLink.
LinkSpec pcie_p2p_link_spec();

}  // namespace sn::sim
