// Virtual-time multi-device cluster: N sim::Machines (each with its own
// compute / H2D / D2H streams) joined by modeled peer-to-peer links.
//
// The paper's runtime is single-GPU; the dist/ layer scales it out by running
// one Runtime per cluster device and exchanging gradients over these links.
// Each directed (src, dst) pair owns an in-order link stream, so concurrent
// ring-neighbor transfers proceed in parallel while back-to-back transfers on
// the same link serialize — the same contention model real NVLink/PCIe
// fabrics exhibit. Like every sim component, only *relative* effects are
// calibrated (NVLink vs PCIe bandwidth ratio, latency vs bandwidth terms).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/machine.hpp"

namespace sn::sim {

struct ClusterSpec {
  DeviceSpec device = k40c_spec();
  LinkSpec link = pcie_p2p_link_spec();
  int devices = 1;
};

/// DGX-style node: TITAN-Xp-class devices on an NVLink fabric.
ClusterSpec nvlink_cluster_spec(int devices);

/// Commodity node: K40c-class devices behind a PCIe switch.
ClusterSpec pcie_cluster_spec(int devices);

class Cluster;

/// 2D (stage, replica) coordinate view over a cluster's devices — the device
/// grid hybrid parallelism (dist::HybridParallelTrainer) trains on. The view
/// is stage-major: device = stage * replicas + replica, so a stage's replica
/// group is a contiguous id range while a replica's pipeline column strides
/// by `replicas`. Purely a naming layer: machines, links and virtual time
/// stay owned by the cluster, so grid and flat views interoperate.
class GridView {
 public:
  /// Requires stages * replicas == cluster.size().
  GridView(Cluster& cluster, int stages, int replicas);

  int stages() const { return stages_; }
  int replicas() const { return replicas_; }

  int device(int stage, int replica) const;
  int stage_of(int device) const { return device / replicas_; }
  int replica_of(int device) const { return device % replicas_; }

  Machine& machine(int stage, int replica);

  /// Devices of stage `stage` across every replica — the all-reduce group.
  std::vector<int> replica_group(int stage) const;
  /// Devices of replica `replica` across every stage — one pipeline column.
  std::vector<int> pipeline_column(int replica) const;

  Cluster& cluster() { return cluster_; }
  const Cluster& cluster() const { return cluster_; }

 private:
  Cluster& cluster_;
  int stages_;
  int replicas_;
};

class Cluster {
 public:
  explicit Cluster(ClusterSpec spec);

  const ClusterSpec& spec() const { return spec_; }
  int size() const { return static_cast<int>(machines_.size()); }

  Machine& machine(int device);
  const Machine& machine(int device) const;

  /// Virtual duration of one P2P transfer of `bytes`.
  double p2p_seconds(uint64_t bytes) const;

  /// Enqueue a copy on the directed link src -> dst, starting no earlier than
  /// `not_before`; returns the completion event. Counters land on the source
  /// machine (bytes_p2p / copies_p2p). Usually reached via Machine::p2p_copy.
  Event p2p_copy(int src, int dst, uint64_t bytes, double not_before);

  /// Cluster-wide virtual time: the latest of any device's compute head.
  double now() const;

  /// Busy head of the directed link src -> dst: the virtual time a transfer
  /// submitted now would start. The peer-staging router compares this against
  /// the host uplink's backlog to pick the faster route.
  double link_busy_until(int src, int dst) const {
    return link(src, dst).busy_until();
  }

  /// Cumulative virtual seconds the directed link src -> dst spent occupied
  /// (per-link occupancy telemetry; bench_sweep's link_busy_frac).
  double link_busy_seconds(int src, int dst) const {
    return link(src, dst).busy_seconds();
  }

  /// Reset every machine and link stream to time zero.
  void reset();

 private:
  Stream& link(int src, int dst) {
    return links_[static_cast<size_t>(src) * machines_.size() + static_cast<size_t>(dst)];
  }
  const Stream& link(int src, int dst) const {
    return links_[static_cast<size_t>(src) * machines_.size() + static_cast<size_t>(dst)];
  }

  ClusterSpec spec_;
  std::vector<std::unique_ptr<Machine>> machines_;
  std::vector<Stream> links_;  ///< dense (src * N + dst) directed-link matrix
};

}  // namespace sn::sim
