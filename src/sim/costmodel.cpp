#include "sim/costmodel.hpp"

// CostModel is header-only today; this TU anchors the library and reserves a
// home for future profile-driven calibration tables.
