#include "nn/batchnorm.hpp"

#include <cmath>

#include "util/threadpool.hpp"

namespace sn::nn {

void bn_forward(const BnDesc& d, const float* x, const float* gamma, const float* beta, float* y,
                float* save_mean, float* save_invstd) {
  const long spatial = static_cast<long>(d.h) * d.w;
  const long cnt = d.per_channel();
  util::ThreadPool::global().parallel_for(0, static_cast<size_t>(d.c), [&](size_t ci) {
    int c = static_cast<int>(ci);
    double sum = 0.0, sq = 0.0;
    for (int n = 0; n < d.n; ++n) {
      const float* plane = x + (static_cast<long>(n) * d.c + c) * spatial;
      for (long s = 0; s < spatial; ++s) {
        sum += plane[s];
        sq += static_cast<double>(plane[s]) * plane[s];
      }
    }
    double mean = sum / static_cast<double>(cnt);
    double var = sq / static_cast<double>(cnt) - mean * mean;
    if (var < 0.0) var = 0.0;
    float invstd = static_cast<float>(1.0 / std::sqrt(var + d.eps));
    save_mean[c] = static_cast<float>(mean);
    save_invstd[c] = invstd;
    float g = gamma[c], b = beta[c], mu = static_cast<float>(mean);
    for (int n = 0; n < d.n; ++n) {
      const float* xp = x + (static_cast<long>(n) * d.c + c) * spatial;
      float* yp = y + (static_cast<long>(n) * d.c + c) * spatial;
      for (long s = 0; s < spatial; ++s) yp[s] = g * (xp[s] - mu) * invstd + b;
    }
  });
}

void bn_backward(const BnDesc& d, const float* x, const float* gamma, const float* save_mean,
                 const float* save_invstd, const float* dy, float* dx, float* dgamma,
                 float* dbeta) {
  const long spatial = static_cast<long>(d.h) * d.w;
  const long cnt = d.per_channel();
  util::ThreadPool::global().parallel_for(0, static_cast<size_t>(d.c), [&](size_t ci) {
    int c = static_cast<int>(ci);
    float mu = save_mean[c], invstd = save_invstd[c], g = gamma[c];
    double sum_dy = 0.0, sum_dy_xhat = 0.0;
    for (int n = 0; n < d.n; ++n) {
      const float* xp = x + (static_cast<long>(n) * d.c + c) * spatial;
      const float* gp = dy + (static_cast<long>(n) * d.c + c) * spatial;
      for (long s = 0; s < spatial; ++s) {
        float xhat = (xp[s] - mu) * invstd;
        sum_dy += gp[s];
        sum_dy_xhat += static_cast<double>(gp[s]) * xhat;
      }
    }
    dgamma[c] = static_cast<float>(sum_dy_xhat);
    dbeta[c] = static_cast<float>(sum_dy);
    float k1 = g * invstd / static_cast<float>(cnt);
    for (int n = 0; n < d.n; ++n) {
      const float* xp = x + (static_cast<long>(n) * d.c + c) * spatial;
      const float* gp = dy + (static_cast<long>(n) * d.c + c) * spatial;
      float* dp = dx + (static_cast<long>(n) * d.c + c) * spatial;
      for (long s = 0; s < spatial; ++s) {
        float xhat = (xp[s] - mu) * invstd;
        dp[s] += k1 * (static_cast<float>(cnt) * gp[s] - static_cast<float>(sum_dy) -
                       xhat * static_cast<float>(sum_dy_xhat));
      }
    }
  });
}

}  // namespace sn::nn
