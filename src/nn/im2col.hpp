// im2col / col2im lowering for GEMM-based convolution.
//
// For one image (C,H,W) and a KHxKW/stride/pad window, im2col produces a
// (C*KH*KW) x (OH*OW) column matrix; convolution is then a single GEMM with
// the (K x C*KH*KW) filter matrix. col2im is the adjoint scatter used by the
// data-gradient pass. The column buffer IS the convolution workspace whose
// size the paper's dynamic workspace allocator reasons about.
#pragma once

namespace sn::nn {

struct Conv2dGeom {
  int c = 1, h = 1, w = 1;      ///< input channels / spatial dims
  int kh = 1, kw = 1;           ///< kernel
  int stride_h = 1, stride_w = 1;
  int pad_h = 0, pad_w = 0;

  int out_h() const { return (h + 2 * pad_h - kh) / stride_h + 1; }
  int out_w() const { return (w + 2 * pad_w - kw) / stride_w + 1; }
};

/// data (C,H,W) -> col ((C*KH*KW) x (OH*OW)), zero-padding out-of-range taps.
void im2col(const Conv2dGeom& g, const float* data, float* col);

/// col ((C*KH*KW) x (OH*OW)) -> accumulate into data (C,H,W); caller zeroes
/// `data` first when overwrite semantics are wanted.
void col2im(const Conv2dGeom& g, const float* col, float* data);

}  // namespace sn::nn
