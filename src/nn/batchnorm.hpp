// Spatial batch normalization (training mode), forward + backward.
//
// Per-channel statistics over N*H*W; the saved (mean, inv_std) pair is the
// layer's aux state — tiny (2*C floats) but required by backward, so it is
// never an offload candidate.
#pragma once

#include <cstdint>

namespace sn::nn {

struct BnDesc {
  int n = 1, c = 1, h = 1, w = 1;
  float eps = 1e-5f;

  uint64_t elems() const { return static_cast<uint64_t>(n) * c * h * w; }
  long per_channel() const { return static_cast<long>(n) * h * w; }
};

/// gamma/beta: C params. save_mean/save_invstd: C aux floats each.
void bn_forward(const BnDesc& d, const float* x, const float* gamma, const float* beta, float* y,
                float* save_mean, float* save_invstd);

/// dgamma/dbeta are overwritten; dx is ACCUMULATED (caller zeroes once per
/// iteration). Needs x plus saved statistics.
void bn_backward(const BnDesc& d, const float* x, const float* gamma, const float* save_mean,
                 const float* save_invstd, const float* dy, float* dx, float* dgamma,
                 float* dbeta);

}  // namespace sn::nn
