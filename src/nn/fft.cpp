#include "nn/fft.hpp"

#include <cassert>
#include <cmath>
#include <cstring>
#include <vector>

namespace sn::nn {

namespace {

uint64_t next_pow2(uint64_t v) {
  uint64_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

}  // namespace

void fft_1d(std::complex<float>* data, uint64_t n, bool inverse) {
  assert((n & (n - 1)) == 0 && "fft size must be a power of two");
  // Bit-reversal permutation.
  for (uint64_t i = 1, j = 0; i < n; ++i) {
    uint64_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }
  // Butterflies.
  for (uint64_t len = 2; len <= n; len <<= 1) {
    double angle = 2.0 * M_PI / static_cast<double>(len) * (inverse ? 1.0 : -1.0);
    std::complex<float> wlen(static_cast<float>(std::cos(angle)),
                             static_cast<float>(std::sin(angle)));
    for (uint64_t i = 0; i < n; i += len) {
      std::complex<float> w(1.0f, 0.0f);
      for (uint64_t j = 0; j < len / 2; ++j) {
        std::complex<float> u = data[i + j];
        std::complex<float> v = data[i + j + len / 2] * w;
        data[i + j] = u + v;
        data[i + j + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
}

void fft_2d(std::complex<float>* plane, uint64_t hp, uint64_t wp, bool inverse) {
  for (uint64_t r = 0; r < hp; ++r) fft_1d(plane + r * wp, wp, inverse);
  // Columns: gather-transform-scatter with a small stack-friendly buffer.
  std::vector<std::complex<float>> col(hp);
  for (uint64_t c = 0; c < wp; ++c) {
    for (uint64_t r = 0; r < hp; ++r) col[r] = plane[r * wp + c];
    fft_1d(col.data(), hp, inverse);
    for (uint64_t r = 0; r < hp; ++r) plane[r * wp + c] = col[r];
  }
}

FftPlan fft_plan(const Conv2dGeom& g) {
  FftPlan p;
  p.hp = next_pow2(static_cast<uint64_t>(g.h) + 2 * g.pad_h);
  p.wp = next_pow2(static_cast<uint64_t>(g.w) + 2 * g.pad_w);
  // The kernel must also fit without wraparound.
  p.hp = std::max(p.hp, next_pow2(static_cast<uint64_t>(g.h + 2 * g.pad_h)));
  p.hp = std::max(p.hp, next_pow2(static_cast<uint64_t>(g.kh)));
  p.wp = std::max(p.wp, next_pow2(static_cast<uint64_t>(g.kw)));
  return p;
}

uint64_t fft_conv_workspace_floats(const Conv2dGeom& g) {
  FftPlan p = fft_plan(g);
  return 2ull * (static_cast<uint64_t>(g.c) + 2) * p.plane();
}

void fft_conv_forward_image(const Conv2dGeom& g, int k, const float* x, const float* w,
                            const float* bias, float* y, float* ws) {
  assert(g.stride_h == 1 && g.stride_w == 1);
  const FftPlan p = fft_plan(g);
  const uint64_t plane = p.plane();
  const int oh = g.out_h(), ow = g.out_w();

  auto* cws = reinterpret_cast<std::complex<float>*>(ws);
  std::complex<float>* xf = cws;                 // C input spectra
  std::complex<float>* wf = cws + static_cast<uint64_t>(g.c) * plane;  // filter spectrum
  std::complex<float>* acc = wf + plane;         // accumulator plane

  // Input spectra: embed each channel at offset (pad_h, pad_w).
  for (int c = 0; c < g.c; ++c) {
    std::complex<float>* xp = xf + static_cast<uint64_t>(c) * plane;
    std::memset(reinterpret_cast<void*>(xp), 0, plane * sizeof(std::complex<float>));
    const float* src = x + static_cast<long>(c) * g.h * g.w;
    for (int r = 0; r < g.h; ++r) {
      for (int col = 0; col < g.w; ++col) {
        xp[(static_cast<uint64_t>(r) + g.pad_h) * p.wp + col + g.pad_w] =
            src[static_cast<long>(r) * g.w + col];
      }
    }
    fft_2d(xp, p.hp, p.wp, false);
  }

  const float inv_scale = 1.0f / static_cast<float>(plane);
  for (int kk = 0; kk < k; ++kk) {
    std::memset(reinterpret_cast<void*>(acc), 0, plane * sizeof(std::complex<float>));
    for (int c = 0; c < g.c; ++c) {
      // Filter spectrum (embedded at the origin).
      std::memset(reinterpret_cast<void*>(wf), 0, plane * sizeof(std::complex<float>));
      const float* wk = w + (static_cast<long>(kk) * g.c + c) * g.kh * g.kw;
      for (int r = 0; r < g.kh; ++r) {
        for (int col = 0; col < g.kw; ++col) {
          wf[static_cast<uint64_t>(r) * p.wp + col] = wk[static_cast<long>(r) * g.kw + col];
        }
      }
      fft_2d(wf, p.hp, p.wp, false);
      // Cross-correlation: X(f) * conj(W(f)).
      const std::complex<float>* xp = xf + static_cast<uint64_t>(c) * plane;
      for (uint64_t i = 0; i < plane; ++i) acc[i] += xp[i] * std::conj(wf[i]);
    }
    fft_2d(acc, p.hp, p.wp, true);
    float* yo = y + static_cast<long>(kk) * oh * ow;
    float bv = bias ? bias[kk] : 0.0f;
    for (int r = 0; r < oh; ++r) {
      for (int col = 0; col < ow; ++col) {
        yo[static_cast<long>(r) * ow + col] =
            acc[static_cast<uint64_t>(r) * p.wp + col].real() * inv_scale + bv;
      }
    }
  }
}

}  // namespace sn::nn
