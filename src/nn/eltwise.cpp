#include "nn/eltwise.hpp"

#include <cstring>

#include "util/threadpool.hpp"


namespace sn::nn {

void eltwise_sum_forward(uint64_t elems, const std::vector<const float*>& xs, float* y) {
  if (xs.empty()) {
    std::memset(y, 0, elems * sizeof(float));
    return;
  }
  util::ThreadPool::global().parallel_for(0, elems, [&](size_t i) {
    float acc = xs[0][i];
    for (size_t b = 1; b < xs.size(); ++b) acc += xs[b][i];
    y[i] = acc;
  });
}

void eltwise_sum_backward(uint64_t elems, const float* dy, float* dx) {
  util::ThreadPool::global().parallel_for(0, elems, [&](size_t i) { dx[i] += dy[i]; });
}

}  // namespace sn::nn
