// Frequency-domain convolution for the kFftTiled algorithm.
//
// Real implementation (not a cost-model stand-in): inputs are zero-embedded
// into power-of-two planes, transformed with an iterative radix-2 FFT,
// multiplied by the conjugated filter spectra (convolution layers compute
// cross-correlation), and inverse-transformed. Stride-1 only — the same
// envelope cuDNN's FFT algorithms have.
//
// The workspace holds the input spectra (C complex planes), one filter
// spectrum and one accumulator plane; conv_workspace_bytes(kFftTiled)
// reserves more than that, mirroring cuDNN's appetite.
#pragma once

#include <complex>
#include <cstdint>

#include "nn/im2col.hpp"

namespace sn::nn {

/// In-place iterative radix-2 FFT; `n` must be a power of two.
/// `inverse` performs the unscaled inverse transform (caller divides by n).
void fft_1d(std::complex<float>* data, uint64_t n, bool inverse);

/// In-place 2-D FFT over an hp x wp row-major plane (both dims pow2).
void fft_2d(std::complex<float>* plane, uint64_t hp, uint64_t wp, bool inverse);

/// Plane geometry used by the FFT convolution for a given conv shape.
struct FftPlan {
  uint64_t hp = 1, wp = 1;
  uint64_t plane() const { return hp * wp; }
};

FftPlan fft_plan(const Conv2dGeom& g);

/// Complex workspace floats needed per image: (C + 2) planes of complex
/// values = 2 * (C + 2) * hp * wp floats.
uint64_t fft_conv_workspace_floats(const Conv2dGeom& g);

/// y (K,OH,OW) for one image via frequency-domain cross-correlation.
/// Requires stride 1; `ws` must hold fft_conv_workspace_floats() floats.
void fft_conv_forward_image(const Conv2dGeom& g, int k, const float* x, const float* w,
                            const float* bias, float* y, float* ws);

}  // namespace sn::nn
