// ReLU activation, forward + backward.
//
// The backward pass gates on the *forward input* (bottom data), matching the
// Caffe/cuDNN convention the paper's stack uses. This choice is load-bearing
// for the memory study: it makes every CONV output a backward dependency of
// its ReLU, which is exactly why the paper offloads CONV outputs (§3.3.1).
// (Gating on the output would be numerically identical — x > 0 <=> y > 0 —
// but would let most CONV outputs die in the forward pass.)
#pragma once

#include <cstdint>

namespace sn::nn {

void relu_forward(uint64_t elems, const float* x, float* y);

/// dx += dy * (x > 0). ACCUMULATES (caller zeroes once per iteration).
void relu_backward(uint64_t elems, const float* x, const float* dy, float* dx);

// Sigmoid and tanh backwards are functions of the *output* (dσ = y(1-y),
// dtanh = 1-y²) — the opposite dependency shape from ReLU, which matters to
// the scheduler: these keep their outputs alive into the backward pass.

void sigmoid_forward(uint64_t elems, const float* x, float* y);

/// dx += dy * y * (1 - y). ACCUMULATES.
void sigmoid_backward(uint64_t elems, const float* y, const float* dy, float* dx);

void tanh_forward(uint64_t elems, const float* x, float* y);

/// dx += dy * (1 - y^2). ACCUMULATES.
void tanh_backward(uint64_t elems, const float* y, const float* dy, float* dx);

}  // namespace sn::nn
