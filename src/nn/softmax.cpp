#include "nn/softmax.hpp"

#include <cmath>

#include "util/pairwise.hpp"

namespace sn::nn {

void softmax_forward(int n, int c, const float* x, float* p) {
  for (int i = 0; i < n; ++i) {
    const float* row = x + static_cast<long>(i) * c;
    float* out = p + static_cast<long>(i) * c;
    float mx = row[0];
    for (int j = 1; j < c; ++j)
      if (row[j] > mx) mx = row[j];
    double sum = 0.0;
    for (int j = 0; j < c; ++j) {
      out[j] = std::exp(row[j] - mx);
      sum += out[j];
    }
    float inv = static_cast<float>(1.0 / sum);
    for (int j = 0; j < c; ++j) out[j] *= inv;
  }
}

double nll_loss_sum(int n, int c, const float* p, const int32_t* labels) {
  // Pairwise over samples: an equal power-of-two shard's sum is a subtree of
  // the combined batch's sum, which is what makes data-parallel losses
  // bit-identical to single-device ones.
  return util::pairwise_sum<double>(static_cast<uint64_t>(n), [&](uint64_t i) {
    float pi = p[static_cast<long>(i) * c + labels[i]];
    return -static_cast<double>(std::log(pi > 1e-12f ? pi : 1e-12f));
  });
}

double nll_loss(int n, int c, const float* p, const int32_t* labels) {
  return nll_loss_sum(n, c, p, labels) / n;
}

void softmax_nll_backward(int n, int c, const float* p, const int32_t* labels, float* dx,
                          int norm) {
  const float inv_n = 1.0f / static_cast<float>(norm > 0 ? norm : n);
  for (int i = 0; i < n; ++i) {
    const float* pi = p + static_cast<long>(i) * c;
    float* di = dx + static_cast<long>(i) * c;
    for (int j = 0; j < c; ++j) di[j] += pi[j] * inv_n;
    di[labels[i]] -= inv_n;
  }
}

}  // namespace sn::nn
