#include "nn/softmax.hpp"

#include <cmath>

namespace sn::nn {

void softmax_forward(int n, int c, const float* x, float* p) {
  for (int i = 0; i < n; ++i) {
    const float* row = x + static_cast<long>(i) * c;
    float* out = p + static_cast<long>(i) * c;
    float mx = row[0];
    for (int j = 1; j < c; ++j)
      if (row[j] > mx) mx = row[j];
    double sum = 0.0;
    for (int j = 0; j < c; ++j) {
      out[j] = std::exp(row[j] - mx);
      sum += out[j];
    }
    float inv = static_cast<float>(1.0 / sum);
    for (int j = 0; j < c; ++j) out[j] *= inv;
  }
}

double nll_loss(int n, int c, const float* p, const int32_t* labels) {
  double loss = 0.0;
  for (int i = 0; i < n; ++i) {
    float pi = p[static_cast<long>(i) * c + labels[i]];
    loss -= std::log(pi > 1e-12f ? pi : 1e-12f);
  }
  return loss / n;
}

void softmax_nll_backward(int n, int c, const float* p, const int32_t* labels, float* dx) {
  const float inv_n = 1.0f / static_cast<float>(n);
  for (int i = 0; i < n; ++i) {
    const float* pi = p + static_cast<long>(i) * c;
    float* di = dx + static_cast<long>(i) * c;
    for (int j = 0; j < c; ++j) di[j] += pi[j] * inv_n;
    di[labels[i]] -= inv_n;
  }
}

}  // namespace sn::nn
