#include "nn/gemm.hpp"

#include <algorithm>
#include <cstring>
#include <vector>

#include "util/threadpool.hpp"

namespace sn::nn {

namespace {

// Fast path: no transposes, the layout im2col convolution and FC forward use.
// i-k-j ordering with a K-block keeps b rows hot in L1/L2.
void gemm_nn(int n, int k, float alpha, const float* a, int lda, const float* b, int ldb,
             float beta, float* c, int ldc, int row_begin, int row_end) {
  constexpr int kBlock = 256;
  for (int i = row_begin; i < row_end; ++i) {
    float* crow = c + static_cast<long>(i) * ldc;
    if (beta == 0.0f) {
      std::memset(crow, 0, sizeof(float) * static_cast<size_t>(n));
    } else if (beta != 1.0f) {
      for (int j = 0; j < n; ++j) crow[j] *= beta;
    }
    for (int k0 = 0; k0 < k; k0 += kBlock) {
      int k1 = std::min(k, k0 + kBlock);
      for (int kk = k0; kk < k1; ++kk) {
        float av = alpha * a[static_cast<long>(i) * lda + kk];
        if (av == 0.0f) continue;
        const float* brow = b + static_cast<long>(kk) * ldb;
        for (int j = 0; j < n; ++j) crow[j] += av * brow[j];
      }
    }
  }
}

// General path: index through op(A)/op(B) explicitly.
void gemm_general(bool trans_a, bool trans_b, int n, int k, float alpha, const float* a,
                  int lda, const float* b, int ldb, float beta, float* c, int ldc, int row_begin,
                  int row_end) {
  for (int i = row_begin; i < row_end; ++i) {
    float* crow = c + static_cast<long>(i) * ldc;
    for (int j = 0; j < n; ++j) {
      double acc = 0.0;
      for (int kk = 0; kk < k; ++kk) {
        float av = trans_a ? a[static_cast<long>(kk) * lda + i] : a[static_cast<long>(i) * lda + kk];
        float bv = trans_b ? b[static_cast<long>(j) * ldb + kk] : b[static_cast<long>(kk) * ldb + j];
        acc += static_cast<double>(av) * static_cast<double>(bv);
      }
      crow[j] = alpha * static_cast<float>(acc) + (beta == 0.0f ? 0.0f : beta * crow[j]);
    }
  }
}

}  // namespace

void sgemm(bool trans_a, bool trans_b, int m, int n, int k, float alpha, const float* a, int lda,
           const float* b, int ldb, float beta, float* c, int ldc) {
  if (m <= 0 || n <= 0) return;
  auto& pool = util::ThreadPool::global();
  // Split rows of C across workers; each range is written by exactly one task.
  const int grain = std::max(1, m / static_cast<int>(pool.size() * 4));
  const int chunks = (m + grain - 1) / grain;
  pool.parallel_for(0, static_cast<size_t>(chunks), [&](size_t ci) {
    int lo = static_cast<int>(ci) * grain;
    int hi = std::min(m, lo + grain);
    if (!trans_a && !trans_b) {
      gemm_nn(n, k, alpha, a, lda, b, ldb, beta, c, ldc, lo, hi);
    } else {
      gemm_general(trans_a, trans_b, n, k, alpha, a, lda, b, ldb, beta, c, ldc, lo, hi);
    }
  });
}

}  // namespace sn::nn
