// Inverted dropout, forward + backward.
//
// The mask is generated from an explicit seed rather than hidden RNG state:
// cost-aware recomputation replays forward passes, and the replayed dropout
// MUST reproduce the identical mask or training numerics would silently
// diverge. The runtime passes a seed derived from (layer id, iteration).
#pragma once

#include <cstdint>

namespace sn::nn {

/// mask[i] in {0, 1/(1-ratio)}; y = x * mask. `mask` is elems() aux floats.
void dropout_forward(uint64_t elems, float ratio, uint64_t seed, const float* x, float* y,
                     float* mask);

/// dx += dy * mask. ACCUMULATES (caller zeroes once per iteration).
void dropout_backward(uint64_t elems, const float* mask, const float* dy, float* dx);

}  // namespace sn::nn
