#include "nn/pool.hpp"

#include <cstring>
#include <limits>

#include "util/threadpool.hpp"

namespace sn::nn {

void pool_forward(const PoolDesc& d, const float* x, float* y, int32_t* argmax) {
  const int oh = d.out_h(), ow = d.out_w();
  auto& pool = util::ThreadPool::global();
  pool.parallel_for(0, static_cast<size_t>(d.n) * d.c, [&](size_t nc) {
    const float* plane = x + nc * static_cast<size_t>(d.h) * d.w;
    float* out = y + nc * static_cast<size_t>(oh) * ow;
    int32_t* am = argmax ? argmax + nc * static_cast<size_t>(oh) * ow : nullptr;
    for (int oy = 0; oy < oh; ++oy) {
      for (int ox = 0; ox < ow; ++ox) {
        int y0 = oy * d.stride_h - d.pad_h, x0 = ox * d.stride_w - d.pad_w;
        if (d.max_pool) {
          float best = -std::numeric_limits<float>::infinity();
          int32_t best_idx = -1;
          for (int ki = 0; ki < d.kh; ++ki) {
            int iy = y0 + ki;
            if (iy < 0 || iy >= d.h) continue;
            for (int kj = 0; kj < d.kw; ++kj) {
              int ix = x0 + kj;
              if (ix < 0 || ix >= d.w) continue;
              float v = plane[static_cast<long>(iy) * d.w + ix];
              if (v > best) {
                best = v;
                best_idx = static_cast<int32_t>(iy * d.w + ix);
              }
            }
          }
          out[static_cast<long>(oy) * ow + ox] = best_idx >= 0 ? best : 0.0f;
          if (am) am[static_cast<long>(oy) * ow + ox] = best_idx;
        } else {
          double acc = 0.0;
          int count = 0;
          for (int ki = 0; ki < d.kh; ++ki) {
            int iy = y0 + ki;
            if (iy < 0 || iy >= d.h) continue;
            for (int kj = 0; kj < d.kw; ++kj) {
              int ix = x0 + kj;
              if (ix < 0 || ix >= d.w) continue;
              acc += plane[static_cast<long>(iy) * d.w + ix];
              ++count;
            }
          }
          out[static_cast<long>(oy) * ow + ox] =
              count ? static_cast<float>(acc / count) : 0.0f;
        }
      }
    }
  });
}

void pool_backward(const PoolDesc& d, const float* dy, const int32_t* argmax, float* dx) {
  const int oh = d.out_h(), ow = d.out_w();
  auto& pool = util::ThreadPool::global();
  pool.parallel_for(0, static_cast<size_t>(d.n) * d.c, [&](size_t nc) {
    float* plane = dx + nc * static_cast<size_t>(d.h) * d.w;
    const float* g = dy + nc * static_cast<size_t>(oh) * ow;
    if (d.max_pool) {
      const int32_t* am = argmax + nc * static_cast<size_t>(oh) * ow;
      for (long i = 0; i < static_cast<long>(oh) * ow; ++i) {
        if (am[i] >= 0) plane[am[i]] += g[i];
      }
    } else {
      for (int oy = 0; oy < oh; ++oy) {
        for (int ox = 0; ox < ow; ++ox) {
          int y0 = oy * d.stride_h - d.pad_h, x0 = ox * d.stride_w - d.pad_w;
          int count = 0;
          for (int ki = 0; ki < d.kh; ++ki) {
            int iy = y0 + ki;
            if (iy < 0 || iy >= d.h) continue;
            for (int kj = 0; kj < d.kw; ++kj) {
              int ix = x0 + kj;
              if (ix >= 0 && ix < d.w) ++count;
            }
          }
          if (!count) continue;
          float gv = g[static_cast<long>(oy) * ow + ox] / static_cast<float>(count);
          for (int ki = 0; ki < d.kh; ++ki) {
            int iy = y0 + ki;
            if (iy < 0 || iy >= d.h) continue;
            for (int kj = 0; kj < d.kw; ++kj) {
              int ix = x0 + kj;
              if (ix >= 0 && ix < d.w) plane[static_cast<long>(iy) * d.w + ix] += gv;
            }
          }
        }
      }
    }
  });
}

}  // namespace sn::nn
