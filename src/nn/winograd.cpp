#include "nn/winograd.hpp"

#include <cassert>
#include <cstring>

#include "nn/gemm.hpp"

namespace sn::nn {

namespace {

// U = G g Gᵀ for one 3x3 filter g; out is 4x4.
// G = [[1,0,0],[.5,.5,.5],[.5,-.5,.5],[0,0,1]]
void transform_weight(const float* g, float* u) {
  float t[4][3];
  for (int j = 0; j < 3; ++j) {
    float g0 = g[0 * 3 + j], g1 = g[1 * 3 + j], g2 = g[2 * 3 + j];
    t[0][j] = g0;
    t[1][j] = 0.5f * (g0 + g1 + g2);
    t[2][j] = 0.5f * (g0 - g1 + g2);
    t[3][j] = g2;
  }
  for (int i = 0; i < 4; ++i) {
    float a = t[i][0], b = t[i][1], c = t[i][2];
    u[i * 4 + 0] = a;
    u[i * 4 + 1] = 0.5f * (a + b + c);
    u[i * 4 + 2] = 0.5f * (a - b + c);
    u[i * 4 + 3] = c;
  }
}

// V = Bᵀ d B for one 4x4 input tile d.
// Bᵀ = [[1,0,-1,0],[0,1,1,0],[0,-1,1,0],[0,1,0,-1]]
void transform_input(const float d[16], float v[16]) {
  float t[16];
  for (int j = 0; j < 4; ++j) {
    float d0 = d[0 * 4 + j], d1 = d[1 * 4 + j], d2 = d[2 * 4 + j], d3 = d[3 * 4 + j];
    t[0 * 4 + j] = d0 - d2;
    t[1 * 4 + j] = d1 + d2;
    t[2 * 4 + j] = d2 - d1;
    t[3 * 4 + j] = d1 - d3;
  }
  for (int i = 0; i < 4; ++i) {
    float t0 = t[i * 4 + 0], t1 = t[i * 4 + 1], t2 = t[i * 4 + 2], t3 = t[i * 4 + 3];
    v[i * 4 + 0] = t0 - t2;
    v[i * 4 + 1] = t1 + t2;
    v[i * 4 + 2] = t2 - t1;
    v[i * 4 + 3] = t1 - t3;
  }
}

// y = Aᵀ m A for one 4x4 product tile; y is 2x2.
// Aᵀ = [[1,1,1,0],[0,1,-1,-1]]
void transform_output(const float m[16], float y[4]) {
  float t[8];
  for (int j = 0; j < 4; ++j) {
    float m0 = m[0 * 4 + j], m1 = m[1 * 4 + j], m2 = m[2 * 4 + j], m3 = m[3 * 4 + j];
    t[0 * 4 + j] = m0 + m1 + m2;
    t[1 * 4 + j] = m1 - m2 - m3;
  }
  for (int i = 0; i < 2; ++i) {
    float t0 = t[i * 4 + 0], t1 = t[i * 4 + 1], t2 = t[i * 4 + 2], t3 = t[i * 4 + 3];
    y[i * 2 + 0] = t0 + t1 + t2;
    y[i * 2 + 1] = t1 - t2 - t3;
  }
}

}  // namespace

uint64_t winograd_workspace_floats(int k, int c, int out_h, int out_w) {
  uint64_t tiles = static_cast<uint64_t>((out_h + 1) / 2) * static_cast<uint64_t>((out_w + 1) / 2);
  return 16ull * (static_cast<uint64_t>(k) * c + static_cast<uint64_t>(c) * tiles +
                  static_cast<uint64_t>(k) * tiles);
}

void winograd_forward_image(const Conv2dGeom& g, int k, const float* x, const float* w,
                            const float* bias, float* y, float* ws) {
  assert(g.kh == 3 && g.kw == 3 && g.stride_h == 1 && g.stride_w == 1);
  const int oh = g.out_h(), ow = g.out_w();
  const int th = (oh + 1) / 2, tw = (ow + 1) / 2;
  const long tiles = static_cast<long>(th) * tw;
  const int c = g.c;

  // Workspace layout: U[16][K][C], V[16][C][T], M[16][K][T].
  float* u = ws;
  float* v = u + 16l * k * c;
  float* m = v + 16l * c * tiles;

  // Transform weights: scatter each filter's 4x4 into 16 (K x C) planes.
  for (int kk = 0; kk < k; ++kk) {
    for (int cc = 0; cc < c; ++cc) {
      float tu[16];
      transform_weight(w + (static_cast<long>(kk) * c + cc) * 9, tu);
      for (int p = 0; p < 16; ++p) u[(static_cast<long>(p) * k + kk) * c + cc] = tu[p];
    }
  }

  // Transform input tiles with virtual zero padding.
  for (int cc = 0; cc < c; ++cc) {
    const float* plane = x + static_cast<long>(cc) * g.h * g.w;
    for (int ty = 0; ty < th; ++ty) {
      for (int tx = 0; tx < tw; ++tx) {
        float d[16];
        int iy0 = ty * 2 - g.pad_h, ix0 = tx * 2 - g.pad_w;
        for (int i = 0; i < 4; ++i) {
          int iy = iy0 + i;
          for (int j = 0; j < 4; ++j) {
            int ix = ix0 + j;
            d[i * 4 + j] = (iy >= 0 && iy < g.h && ix >= 0 && ix < g.w)
                               ? plane[static_cast<long>(iy) * g.w + ix]
                               : 0.0f;
          }
        }
        float tv[16];
        transform_input(d, tv);
        long t = static_cast<long>(ty) * tw + tx;
        for (int p = 0; p < 16; ++p) v[(static_cast<long>(p) * c + cc) * tiles + t] = tv[p];
      }
    }
  }

  // 16 independent (K x C) * (C x T) products.
  for (int p = 0; p < 16; ++p) {
    sgemm(false, false, k, static_cast<int>(tiles), c, 1.0f, u + 16l * 0 + static_cast<long>(p) * k * c,
          c, v + static_cast<long>(p) * c * tiles, static_cast<int>(tiles), 0.0f,
          m + static_cast<long>(p) * k * tiles, static_cast<int>(tiles));
  }

  // Inverse transform into y, clipping the last partial tile row/col.
  for (int kk = 0; kk < k; ++kk) {
    float* oplane = y + static_cast<long>(kk) * oh * ow;
    float bv = bias ? bias[kk] : 0.0f;
    for (int ty = 0; ty < th; ++ty) {
      for (int tx = 0; tx < tw; ++tx) {
        long t = static_cast<long>(ty) * tw + tx;
        float tm[16];
        for (int p = 0; p < 16; ++p) tm[p] = m[(static_cast<long>(p) * k + kk) * tiles + t];
        float ty2[4];
        transform_output(tm, ty2);
        for (int i = 0; i < 2; ++i) {
          int oy = ty * 2 + i;
          if (oy >= oh) break;
          for (int j = 0; j < 2; ++j) {
            int ox = tx * 2 + j;
            if (ox >= ow) break;
            oplane[static_cast<long>(oy) * ow + ox] = ty2[i * 2 + j] + bv;
          }
        }
      }
    }
  }
}

}  // namespace sn::nn
