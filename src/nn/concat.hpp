// Channel-wise concatenation — the "fan-in" join of Inception and DenseNet.
//
// Inputs share (N, H, W); output channel count is the sum. Backward slices
// the gradient back per branch.
#pragma once

#include <vector>

namespace sn::nn {

struct ConcatDesc {
  int n = 1, h = 1, w = 1;
  std::vector<int> channels;  ///< per-input channel counts

  int total_c() const {
    int t = 0;
    for (int c : channels) t += c;
    return t;
  }
};

void concat_forward(const ConcatDesc& d, const std::vector<const float*>& xs, float* y);

/// Accumulate branch `idx`'s gradient slice from dy into dx (caller zeroes
/// once per iteration).
void concat_backward(const ConcatDesc& d, const float* dy, int idx, float* dx);

}  // namespace sn::nn
