// Local Response Normalization across channels (AlexNet-style), fwd + bwd.
//
//   scale[n,c,s] = k + (alpha/size) * sum_{c' in window(c)} x[n,c',s]^2
//   y = x * scale^{-beta}
//
// The scale buffer is kept as layer aux state: backward needs it, and it is
// as large as the activation itself — one reason LRN layers are memory-heavy
// but compute-cheap (Fig. 8), making them prime recomputation targets.
#pragma once

#include <cstdint>

namespace sn::nn {

struct LrnDesc {
  int n = 1, c = 1, h = 1, w = 1;
  int size = 5;
  float alpha = 1e-4f;
  float beta = 0.75f;
  float k = 2.0f;

  uint64_t elems() const { return static_cast<uint64_t>(n) * c * h * w; }
};

/// `scale` holds elems() floats of aux state for backward.
void lrn_forward(const LrnDesc& d, const float* x, float* y, float* scale);

/// ACCUMULATES into dx (caller zeroes once per iteration).
void lrn_backward(const LrnDesc& d, const float* x, const float* y, const float* scale,
                  const float* dy, float* dx);

}  // namespace sn::nn
