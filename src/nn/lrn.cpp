#include "nn/lrn.hpp"

#include <cmath>

#include "util/threadpool.hpp"

namespace sn::nn {

void lrn_forward(const LrnDesc& d, const float* x, float* y, float* scale) {
  const long spatial = static_cast<long>(d.h) * d.w;
  const int half = d.size / 2;
  const float alpha_over_n = d.alpha / static_cast<float>(d.size);
  util::ThreadPool::global().parallel_for(0, static_cast<size_t>(d.n), [&](size_t ni) {
    const float* xn = x + static_cast<long>(ni) * d.c * spatial;
    float* yn = y + static_cast<long>(ni) * d.c * spatial;
    float* sn = scale + static_cast<long>(ni) * d.c * spatial;
    for (long s = 0; s < spatial; ++s) {
      for (int c = 0; c < d.c; ++c) {
        int lo = c - half < 0 ? 0 : c - half;
        int hi = c + half >= d.c ? d.c - 1 : c + half;
        double acc = 0.0;
        for (int cc = lo; cc <= hi; ++cc) {
          float v = xn[static_cast<long>(cc) * spatial + s];
          acc += static_cast<double>(v) * v;
        }
        float sc = d.k + alpha_over_n * static_cast<float>(acc);
        sn[static_cast<long>(c) * spatial + s] = sc;
        yn[static_cast<long>(c) * spatial + s] =
            xn[static_cast<long>(c) * spatial + s] * std::pow(sc, -d.beta);
      }
    }
  });
}

void lrn_backward(const LrnDesc& d, const float* x, const float* y, const float* scale,
                  const float* dy, float* dx) {
  const long spatial = static_cast<long>(d.h) * d.w;
  const int half = d.size / 2;
  const float ratio = 2.0f * d.alpha * d.beta / static_cast<float>(d.size);
  util::ThreadPool::global().parallel_for(0, static_cast<size_t>(d.n), [&](size_t ni) {
    const float* xn = x + static_cast<long>(ni) * d.c * spatial;
    const float* yn = y + static_cast<long>(ni) * d.c * spatial;
    const float* sn = scale + static_cast<long>(ni) * d.c * spatial;
    const float* gn = dy + static_cast<long>(ni) * d.c * spatial;
    float* dn = dx + static_cast<long>(ni) * d.c * spatial;
    for (long s = 0; s < spatial; ++s) {
      for (int c = 0; c < d.c; ++c) {
        // Direct term.
        long ci = static_cast<long>(c) * spatial + s;
        float acc = gn[ci] * std::pow(sn[ci], -d.beta);
        // Cross terms: every channel c' whose window contains c.
        int lo = c - half < 0 ? 0 : c - half;
        int hi = c + half >= d.c ? d.c - 1 : c + half;
        double cross = 0.0;
        for (int cc = lo; cc <= hi; ++cc) {
          long cj = static_cast<long>(cc) * spatial + s;
          cross += static_cast<double>(gn[cj]) * yn[cj] / sn[cj];
        }
        dn[ci] += acc - ratio * xn[ci] * static_cast<float>(cross);
      }
    }
  });
}

}  // namespace sn::nn
