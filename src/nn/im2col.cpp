#include "nn/im2col.hpp"

#include <cstring>

namespace sn::nn {

void im2col(const Conv2dGeom& g, const float* data, float* col) {
  const int oh = g.out_h(), ow = g.out_w();
  const long ospatial = static_cast<long>(oh) * ow;
  long row = 0;
  for (int c = 0; c < g.c; ++c) {
    const float* plane = data + static_cast<long>(c) * g.h * g.w;
    for (int ki = 0; ki < g.kh; ++ki) {
      for (int kj = 0; kj < g.kw; ++kj, ++row) {
        float* crow = col + row * ospatial;
        for (int oy = 0; oy < oh; ++oy) {
          int iy = oy * g.stride_h - g.pad_h + ki;
          if (iy < 0 || iy >= g.h) {
            std::memset(crow + static_cast<long>(oy) * ow, 0, sizeof(float) * static_cast<size_t>(ow));
            continue;
          }
          const float* irow = plane + static_cast<long>(iy) * g.w;
          float* orow = crow + static_cast<long>(oy) * ow;
          for (int ox = 0; ox < ow; ++ox) {
            int ix = ox * g.stride_w - g.pad_w + kj;
            orow[ox] = (ix >= 0 && ix < g.w) ? irow[ix] : 0.0f;
          }
        }
      }
    }
  }
}

void col2im(const Conv2dGeom& g, const float* col, float* data) {
  const int oh = g.out_h(), ow = g.out_w();
  const long ospatial = static_cast<long>(oh) * ow;
  long row = 0;
  for (int c = 0; c < g.c; ++c) {
    float* plane = data + static_cast<long>(c) * g.h * g.w;
    for (int ki = 0; ki < g.kh; ++ki) {
      for (int kj = 0; kj < g.kw; ++kj, ++row) {
        const float* crow = col + row * ospatial;
        for (int oy = 0; oy < oh; ++oy) {
          int iy = oy * g.stride_h - g.pad_h + ki;
          if (iy < 0 || iy >= g.h) continue;
          float* irow = plane + static_cast<long>(iy) * g.w;
          const float* orow = crow + static_cast<long>(oy) * ow;
          for (int ox = 0; ox < ow; ++ox) {
            int ix = ox * g.stride_w - g.pad_w + kj;
            if (ix >= 0 && ix < g.w) irow[ix] += orow[ox];
          }
        }
      }
    }
  }
}

}  // namespace sn::nn
