// 2-D convolution with a cuDNN-style algorithm menu.
//
// The paper's dynamic workspace allocator (§3.5) depends on convolutions
// exposing multiple algorithms with different (workspace, speed) points:
//
//   kDirect      — no workspace, slowest
//   kIm2colGemm  — column-buffer workspace, fast (cuDNN's IMPLICIT_GEMM kin)
//   kWinograd    — 3x3/stride-1 only, moderate workspace, fastest for 3x3
//   kFftTiled    — stride-1 only, largest workspace, fastest for big kernels
//
// All algorithms are numerically interchangeable: the runtime may pick any
// feasible one without changing training results. kFftTiled's arithmetic is
// executed via the im2col path (identical numerics); its workspace demand and
// speed are modeled after cuDNN's FFT tiling — see DESIGN.md (substitutions).
#pragma once

#include <cstdint>
#include <string>

#include "nn/im2col.hpp"

namespace sn::nn {

struct ConvDesc {
  int n = 1;                        ///< batch
  int c = 1, h = 1, w = 1;          ///< input NCHW
  int k = 1;                        ///< output channels
  int kh = 1, kw = 1;
  int stride_h = 1, stride_w = 1;
  int pad_h = 0, pad_w = 0;
  bool has_bias = true;

  Conv2dGeom geom() const {
    return Conv2dGeom{c, h, w, kh, kw, stride_h, stride_w, pad_h, pad_w};
  }
  int out_h() const { return geom().out_h(); }
  int out_w() const { return geom().out_w(); }
  uint64_t weight_elems() const {
    return static_cast<uint64_t>(k) * c * kh * kw;
  }
  uint64_t out_elems() const {
    return static_cast<uint64_t>(n) * k * out_h() * out_w();
  }
  uint64_t in_elems() const { return static_cast<uint64_t>(n) * c * h * w; }
};

enum class ConvAlgo { kDirect, kIm2colGemm, kWinograd, kFftTiled };
enum class ConvPass { kForward, kBackwardData, kBackwardFilter };

constexpr int kNumConvAlgos = 4;
const char* algo_name(ConvAlgo a);

/// Whether `algo` can execute this geometry at all (mirrors cuDNN's support
/// envelope: Winograd = 3x3/s1, FFT = stride 1 and kernel <= input).
bool conv_algo_supported(const ConvDesc& d, ConvAlgo algo);

/// Scratch bytes `algo` needs for `pass` (0 for kDirect). This is the number
/// the dynamic workspace allocator checks against per-step free memory.
uint64_t conv_workspace_bytes(const ConvDesc& d, ConvAlgo algo, ConvPass pass);

/// Fraction of device peak FLOP/s the algorithm sustains on this geometry;
/// feeds the simulated cost model. Higher = faster.
double conv_algo_efficiency(const ConvDesc& d, ConvAlgo algo, ConvPass pass);

/// MAC-based flop count for one pass (2 * N*K*C*KH*KW*OH*OW).
double conv_flops(const ConvDesc& d, ConvPass pass);

// --- real execution -------------------------------------------------------

/// y (N,K,OH,OW) = conv(x (N,C,H,W), w (K,C,KH,KW)) + bias. `ws` must hold
/// conv_workspace_bytes(d, algo, kForward) bytes (may be null for kDirect).
void conv_forward(const ConvDesc& d, ConvAlgo algo, const float* x, const float* w,
                  const float* bias, float* y, float* ws);

/// dx (N,C,H,W) from dy (N,K,OH,OW) and w. ACCUMULATES into dx (the caller
/// zeroes the gradient once per iteration; fan-out consumers then sum).
void conv_backward_data(const ConvDesc& d, ConvAlgo algo, const float* w, const float* dy,
                        float* dx, float* ws);

/// dw (K,C,KH,KW) and db (K) from x and dy (accumulated across the batch;
/// dw/db are overwritten, not accumulated, matching the trainer's contract).
void conv_backward_filter(const ConvDesc& d, ConvAlgo algo, const float* x, const float* dy,
                          float* dw, float* db, float* ws);

}  // namespace sn::nn
