#include "nn/activation.hpp"

#include <cmath>

#include "util/threadpool.hpp"

namespace sn::nn {

void relu_forward(uint64_t elems, const float* x, float* y) {
  util::ThreadPool::global().parallel_for(0, elems, [&](size_t i) { y[i] = x[i] > 0.0f ? x[i] : 0.0f; });
}

void relu_backward(uint64_t elems, const float* x, const float* dy, float* dx) {
  util::ThreadPool::global().parallel_for(0, elems, [&](size_t i) {
    if (x[i] > 0.0f) dx[i] += dy[i];
  });
}

void sigmoid_forward(uint64_t elems, const float* x, float* y) {
  util::ThreadPool::global().parallel_for(0, elems,
                                          [&](size_t i) { y[i] = 1.0f / (1.0f + std::exp(-x[i])); });
}

void sigmoid_backward(uint64_t elems, const float* y, const float* dy, float* dx) {
  util::ThreadPool::global().parallel_for(0, elems,
                                          [&](size_t i) { dx[i] += dy[i] * y[i] * (1.0f - y[i]); });
}

void tanh_forward(uint64_t elems, const float* x, float* y) {
  util::ThreadPool::global().parallel_for(0, elems, [&](size_t i) { y[i] = std::tanh(x[i]); });
}

void tanh_backward(uint64_t elems, const float* y, const float* dy, float* dx) {
  util::ThreadPool::global().parallel_for(0, elems,
                                          [&](size_t i) { dx[i] += dy[i] * (1.0f - y[i] * y[i]); });
}

}  // namespace sn::nn
