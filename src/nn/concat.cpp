#include "nn/concat.hpp"

#include <cstring>

namespace sn::nn {

void concat_forward(const ConcatDesc& d, const std::vector<const float*>& xs, float* y) {
  const long spatial = static_cast<long>(d.h) * d.w;
  const int tc = d.total_c();
  for (int n = 0; n < d.n; ++n) {
    long c_off = 0;
    for (size_t b = 0; b < xs.size(); ++b) {
      long bytes = static_cast<long>(d.channels[b]) * spatial;
      std::memcpy(y + (static_cast<long>(n) * tc + c_off) * spatial,
                  xs[b] + static_cast<long>(n) * d.channels[b] * spatial,
                  sizeof(float) * static_cast<size_t>(bytes));
      c_off += d.channels[b];
    }
  }
}

void concat_backward(const ConcatDesc& d, const float* dy, int idx, float* dx) {
  const long spatial = static_cast<long>(d.h) * d.w;
  const int tc = d.total_c();
  long c_off = 0;
  for (int b = 0; b < idx; ++b) c_off += d.channels[b];
  for (int n = 0; n < d.n; ++n) {
    float* dst = dx + static_cast<long>(n) * d.channels[idx] * spatial;
    const float* src = dy + (static_cast<long>(n) * tc + c_off) * spatial;
    long cnt = static_cast<long>(d.channels[idx]) * spatial;
    for (long i = 0; i < cnt; ++i) dst[i] += src[i];
  }
}

}  // namespace sn::nn
