// Spatial pooling (max and average), forward + backward.
//
// Max pooling records the argmax index of every output element in an aux
// buffer so the backward pass is an exact scatter; this aux buffer is part of
// the layer's memory footprint the scheduler accounts for.
#pragma once

#include <cstdint>

namespace sn::nn {

struct PoolDesc {
  int n = 1, c = 1, h = 1, w = 1;
  int kh = 2, kw = 2;
  int stride_h = 2, stride_w = 2;
  int pad_h = 0, pad_w = 0;
  bool max_pool = true;  ///< false = average pooling

  int out_h() const { return (h + 2 * pad_h - kh) / stride_h + 1; }
  int out_w() const { return (w + 2 * pad_w - kw) / stride_w + 1; }
  uint64_t out_elems() const {
    return static_cast<uint64_t>(n) * c * out_h() * out_w();
  }
  uint64_t in_elems() const { return static_cast<uint64_t>(n) * c * h * w; }
};

/// `argmax` must hold out_elems() int32 slots for max pooling (ignored for
/// average pooling; may be null then).
void pool_forward(const PoolDesc& d, const float* x, float* y, int32_t* argmax);

/// ACCUMULATES into dx (caller zeroes once per iteration).
void pool_backward(const PoolDesc& d, const float* dy, const int32_t* argmax, float* dx);

}  // namespace sn::nn
