// Fully-connected layer, forward + backward (GEMM-based).
//
//   y (N x K) = x (N x D) * Wᵀ (D x K) + b
//
// Weights are stored (K x D), matching the convolution filter convention.
#pragma once

#include <cstdint>

namespace sn::nn {

struct FcDesc {
  int n = 1;  ///< batch
  int d = 1;  ///< input features
  int k = 1;  ///< output features
  bool has_bias = true;
};

void fc_forward(const FcDesc& f, const float* x, const float* w, const float* bias, float* y);

/// dx (N x D) += dy (N x K) * W (K x D). ACCUMULATES (caller zeroes once).
void fc_backward_data(const FcDesc& f, const float* w, const float* dy, float* dx);

/// dW (K x D) = dyᵀ (K x N) * x (N x D); db = column sums of dy. Overwritten.
void fc_backward_filter(const FcDesc& f, const float* x, const float* dy, float* dw, float* db);

}  // namespace sn::nn
