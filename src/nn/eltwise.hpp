// Element-wise sum — the "join" primitive of residual networks (Fig. 1).
//
// Forward adds any number of equally-shaped inputs; backward broadcasts the
// output gradient to every branch. This is the layer that creates the
// long-range tensor dependencies liveness analysis must respect.
#pragma once

#include <cstdint>
#include <vector>

namespace sn::nn {

void eltwise_sum_forward(uint64_t elems, const std::vector<const float*>& xs, float* y);

/// dx_branch += dy. ACCUMULATES (caller zeroes once per iteration).
void eltwise_sum_backward(uint64_t elems, const float* dy, float* dx);

}  // namespace sn::nn
