// Winograd F(2x2, 3x3) convolution forward pass.
//
// Real minimal-filtering implementation: weights are transformed once per
// call (U = G g Gᵀ), each 4x4 input tile is transformed (V = Bᵀ d B), the
// 16 per-position (K x C)·(C x T) products run through sgemm, and tiles are
// inverse-transformed (Y = Aᵀ M A). Only 3x3 / stride-1 kernels qualify —
// exactly the envelope cuDNN's Winograd path has, which is what makes the
// runtime's per-layer algorithm choice (paper §3.5) non-trivial.
#pragma once

#include <cstdint>

#include "nn/im2col.hpp"

namespace sn::nn {

/// Workspace floats needed for one image: transformed weights + transformed
/// input tiles + per-position products.
uint64_t winograd_workspace_floats(int k, int c, int out_h, int out_w);

/// y (K,OH,OW) per image; `ws` must hold winograd_workspace_floats() floats.
/// Requires g.kh == g.kw == 3 and stride 1 (checked).
void winograd_forward_image(const Conv2dGeom& g, int k, const float* x, const float* w,
                            const float* bias, float* y, float* ws);

}  // namespace sn::nn
