// Softmax over the channel dimension + negative log-likelihood loss.
//
// Follows the fused cuDNN/Caffe SoftmaxWithLoss shape: forward produces the
// probability tensor and the scalar mean loss; backward emits
// (p - onehot(label)) / N directly from the probabilities.
#pragma once

#include <cstdint>

namespace sn::nn {

/// x, p: (N x C). Row-wise softmax with the max-subtraction trick.
void softmax_forward(int n, int c, const float* x, float* p);

/// Mean NLL of `labels` (size n, values in [0, c)).
double nll_loss(int n, int c, const float* p, const int32_t* labels);

/// dx += (p - onehot) / n. ACCUMULATES (caller zeroes once per iteration).
void softmax_nll_backward(int n, int c, const float* p, const int32_t* labels, float* dx);

}  // namespace sn::nn
