// Softmax over the channel dimension + negative log-likelihood loss.
//
// Follows the fused cuDNN/Caffe SoftmaxWithLoss shape: forward produces the
// probability tensor and the scalar mean loss; backward emits
// (p - onehot(label)) / N directly from the probabilities.
#pragma once

#include <cstdint>

namespace sn::nn {

/// x, p: (N x C). Row-wise softmax with the max-subtraction trick.
void softmax_forward(int n, int c, const float* x, float* p);

/// Raw NLL sum over the batch (pairwise tree over samples, so a shard's sum
/// is a subtree of the full batch's — see util/pairwise.hpp).
double nll_loss_sum(int n, int c, const float* p, const int32_t* labels);

/// Mean NLL of `labels` (size n, values in [0, c)): nll_loss_sum / n.
double nll_loss(int n, int c, const float* p, const int32_t* labels);

/// dx += (p - onehot) / norm. ACCUMULATES (caller zeroes once per iteration).
/// `norm` is the batch the loss is averaged over — the local batch normally,
/// the GLOBAL batch under data parallelism so per-sample gradients do not
/// depend on how the batch is sharded. norm <= 0 means "use n".
void softmax_nll_backward(int n, int c, const float* p, const int32_t* labels, float* dx,
                          int norm = 0);

}  // namespace sn::nn
