// Single-precision GEMM for the kernel library.
//
// Row-major: C (MxN) = alpha * op(A) * op(B) + beta * C.
// Blocked over K with the inner loops arranged i-k-j so the innermost loop
// streams both B and C rows; parallelized across row-blocks of C via the
// global thread pool. Not a BLAS replacement — it exists so that convolution
// and FC layers have real, recomputable numerics with plausible cache
// behaviour.
#pragma once

namespace sn::nn {

void sgemm(bool trans_a, bool trans_b, int m, int n, int k, float alpha, const float* a, int lda,
           const float* b, int ldb, float beta, float* c, int ldc);

}  // namespace sn::nn
