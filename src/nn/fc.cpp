#include "nn/fc.hpp"

#include <algorithm>
#include <vector>

#include "nn/gemm.hpp"
#include "util/pairwise.hpp"
#include "util/threadpool.hpp"

namespace sn::nn {

void fc_forward(const FcDesc& f, const float* x, const float* w, const float* bias, float* y) {
  // y = x * Wᵀ
  sgemm(false, true, f.n, f.k, f.d, 1.0f, x, f.d, w, f.d, 0.0f, y, f.k);
  if (f.has_bias && bias) {
    for (int n = 0; n < f.n; ++n) {
      float* row = y + static_cast<long>(n) * f.k;
      for (int k = 0; k < f.k; ++k) row[k] += bias[k];
    }
  }
}

void fc_backward_data(const FcDesc& f, const float* w, const float* dy, float* dx) {
  // dx += dy * W (beta = 1: accumulate, caller zeroes once per iteration)
  sgemm(false, false, f.n, f.d, f.k, 1.0f, dy, f.k, w, f.d, 1.0f, dx, f.d);
}

void fc_backward_filter(const FcDesc& f, const float* x, const float* dy, float* dw, float* db) {
  // dW = dyᵀ * x, reduced over the batch with a pairwise tree per output row
  // (see util/pairwise.hpp): the per-sample leaf is the outer-product row
  // dy[n][k] * x[n][:], so an equal power-of-two batch shard contributes
  // exactly one subtree and data-parallel all-reduced gradients match the
  // single-device ones bit for bit.
  // Rows run in blocks so each worker allocates its accumulator/leaf scratch
  // once per block, not once per output row (finish() resets the tree).
  auto& pool = util::ThreadPool::global();
  const int grain = std::max(1, f.k / static_cast<int>(pool.size() * 4));
  const int blocks = (f.k + grain - 1) / grain;
  pool.parallel_for(0, static_cast<size_t>(blocks), [&](size_t bi) {
    const int k0 = static_cast<int>(bi) * grain;
    const int k1 = std::min(f.k, k0 + grain);
    util::PairwiseVecAccumulator acc(static_cast<size_t>(f.d));
    std::vector<float> leaf(static_cast<size_t>(f.d));
    for (int k = k0; k < k1; ++k) {
      for (int n = 0; n < f.n; ++n) {
        const float g = dy[static_cast<long>(n) * f.k + k];
        const float* xn = x + static_cast<long>(n) * f.d;
        for (int dd = 0; dd < f.d; ++dd) leaf[static_cast<size_t>(dd)] = g * xn[dd];
        acc.push(leaf.data());
      }
      acc.finish(dw + static_cast<long>(k) * f.d);
      if (db) {
        db[k] = util::pairwise_sum<float>(static_cast<uint64_t>(f.n), [&](uint64_t n) {
          return dy[static_cast<long>(n) * f.k + k];
        });
      }
    }
  });
}

}  // namespace sn::nn
