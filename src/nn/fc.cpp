#include "nn/fc.hpp"

#include "nn/gemm.hpp"

namespace sn::nn {

void fc_forward(const FcDesc& f, const float* x, const float* w, const float* bias, float* y) {
  // y = x * Wᵀ
  sgemm(false, true, f.n, f.k, f.d, 1.0f, x, f.d, w, f.d, 0.0f, y, f.k);
  if (f.has_bias && bias) {
    for (int n = 0; n < f.n; ++n) {
      float* row = y + static_cast<long>(n) * f.k;
      for (int k = 0; k < f.k; ++k) row[k] += bias[k];
    }
  }
}

void fc_backward_data(const FcDesc& f, const float* w, const float* dy, float* dx) {
  // dx += dy * W (beta = 1: accumulate, caller zeroes once per iteration)
  sgemm(false, false, f.n, f.d, f.k, 1.0f, dy, f.k, w, f.d, 1.0f, dx, f.d);
}

void fc_backward_filter(const FcDesc& f, const float* x, const float* dy, float* dw, float* db) {
  // dW = dyᵀ * x
  sgemm(true, false, f.k, f.d, f.n, 1.0f, dy, f.k, x, f.d, 0.0f, dw, f.d);
  if (db) {
    for (int k = 0; k < f.k; ++k) {
      double acc = 0.0;
      for (int n = 0; n < f.n; ++n) acc += dy[static_cast<long>(n) * f.k + k];
      db[k] = static_cast<float>(acc);
    }
  }
}

}  // namespace sn::nn
