#include "nn/dropout.hpp"

#include "util/rng.hpp"
#include "util/threadpool.hpp"

namespace sn::nn {

void dropout_forward(uint64_t elems, float ratio, uint64_t seed, const float* x, float* y,
                     float* mask) {
  const float scale = ratio < 1.0f ? 1.0f / (1.0f - ratio) : 0.0f;
  // Chunked so the RNG stream per chunk is independent of thread scheduling:
  // chunk i always seeds with (seed, i), keeping masks bit-deterministic.
  constexpr uint64_t kChunk = 4096;
  uint64_t chunks = (elems + kChunk - 1) / kChunk;
  util::ThreadPool::global().parallel_for(0, chunks, [&](size_t ci) {
    util::Rng rng(seed ^ (0x517CC1B727220A95ull * (ci + 1)));
    uint64_t lo = ci * kChunk;
    uint64_t hi = lo + kChunk < elems ? lo + kChunk : elems;
    for (uint64_t i = lo; i < hi; ++i) {
      float m = rng.next_float() < ratio ? 0.0f : scale;
      mask[i] = m;
      y[i] = x[i] * m;
    }
  });
}

void dropout_backward(uint64_t elems, const float* mask, const float* dy, float* dx) {
  util::ThreadPool::global().parallel_for(0, elems, [&](size_t i) { dx[i] += dy[i] * mask[i]; });
}

}  // namespace sn::nn
