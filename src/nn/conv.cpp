#include "nn/conv.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <vector>

#include "nn/gemm.hpp"
#include "nn/fft.hpp"
#include "nn/winograd.hpp"
#include "util/pairwise.hpp"
#include "util/threadpool.hpp"

namespace sn::nn {

namespace {

/// Column-buffer elements for one image (im2col workspace unit).
uint64_t col_elems(const ConvDesc& d) {
  return static_cast<uint64_t>(d.c) * d.kh * d.kw * d.out_h() * d.out_w();
}

/// Batch-scale column buffer, one slice per image — matching cuDNN, whose
/// GEMM/FFT algorithms allocate workspace proportional to the batch. The
/// batch scaling is what makes the paper's dynamic workspace allocation a
/// real trade-off (Fig. 12).
uint64_t col_bytes(const ConvDesc& d) {
  return col_elems(d) * d.n * sizeof(float);
}

void direct_forward(const ConvDesc& d, const float* x, const float* w, const float* bias,
                    float* y) {
  const int oh = d.out_h(), ow = d.out_w();
  auto& pool = util::ThreadPool::global();
  pool.parallel_for(0, static_cast<size_t>(d.n) * d.k, [&](size_t nk) {
    int n = static_cast<int>(nk) / d.k;
    int k = static_cast<int>(nk) % d.k;
    const float* xi = x + static_cast<long>(n) * d.c * d.h * d.w;
    const float* wk = w + static_cast<long>(k) * d.c * d.kh * d.kw;
    float* yo = y + (static_cast<long>(n) * d.k + k) * oh * ow;
    float bv = bias ? bias[k] : 0.0f;
    for (int oy = 0; oy < oh; ++oy) {
      for (int ox = 0; ox < ow; ++ox) {
        double acc = bv;
        for (int c = 0; c < d.c; ++c) {
          const float* plane = xi + static_cast<long>(c) * d.h * d.w;
          const float* wc = wk + static_cast<long>(c) * d.kh * d.kw;
          for (int ki = 0; ki < d.kh; ++ki) {
            int iy = oy * d.stride_h - d.pad_h + ki;
            if (iy < 0 || iy >= d.h) continue;
            for (int kj = 0; kj < d.kw; ++kj) {
              int ix = ox * d.stride_w - d.pad_w + kj;
              if (ix < 0 || ix >= d.w) continue;
              acc += static_cast<double>(plane[static_cast<long>(iy) * d.w + ix]) *
                     wc[ki * d.kw + kj];
            }
          }
        }
        yo[static_cast<long>(oy) * ow + ox] = static_cast<float>(acc);
      }
    }
  });
}

void im2col_forward(const ConvDesc& d, const float* x, const float* w, const float* bias, float* y,
                    float* ws) {
  const Conv2dGeom g = d.geom();
  const int oh = d.out_h(), ow = d.out_w();
  const long ospatial = static_cast<long>(oh) * ow;
  const int ck = d.c * d.kh * d.kw;
  const uint64_t slice = col_elems(d);
  // Each image owns a workspace slice; nested sgemm runs inline per worker.
  util::ThreadPool::global().parallel_for(0, static_cast<size_t>(d.n), [&](size_t n) {
    float* col = ws + n * slice;
    im2col(g, x + static_cast<long>(n) * d.c * d.h * d.w, col);
    float* yo = y + static_cast<long>(n) * d.k * ospatial;
    sgemm(false, false, d.k, static_cast<int>(ospatial), ck, 1.0f, w, ck, col,
          static_cast<int>(ospatial), 0.0f, yo, static_cast<int>(ospatial));
    if (bias) {
      for (int k = 0; k < d.k; ++k) {
        float bv = bias[k];
        float* row = yo + static_cast<long>(k) * ospatial;
        for (long i = 0; i < ospatial; ++i) row[i] += bv;
      }
    }
  });
}

void fft_forward(const ConvDesc& d, const float* x, const float* w, const float* bias, float* y,
                 float* ws) {
  const Conv2dGeom g = d.geom();
  const long in_stride = static_cast<long>(d.c) * d.h * d.w;
  const long out_stride = static_cast<long>(d.k) * d.out_h() * d.out_w();
  const uint64_t slice = fft_conv_workspace_floats(g);
  util::ThreadPool::global().parallel_for(0, static_cast<size_t>(d.n), [&](size_t n) {
    fft_conv_forward_image(g, d.k, x + n * in_stride, w, bias, y + n * out_stride,
                           ws + n * slice);
  });
}

void winograd_forward(const ConvDesc& d, const float* x, const float* w, const float* bias,
                      float* y, float* ws) {
  const Conv2dGeom g = d.geom();
  const long in_stride = static_cast<long>(d.c) * d.h * d.w;
  const long out_stride = static_cast<long>(d.k) * d.out_h() * d.out_w();
  const uint64_t slice = winograd_workspace_floats(d.k, d.c, d.out_h(), d.out_w());
  util::ThreadPool::global().parallel_for(0, static_cast<size_t>(d.n), [&](size_t n) {
    winograd_forward_image(g, d.k, x + n * in_stride, w, bias, y + n * out_stride,
                           ws + n * slice);
  });
}

void direct_backward_data(const ConvDesc& d, const float* w, const float* dy, float* dx) {
  const int oh = d.out_h(), ow = d.out_w();
  auto& pool = util::ThreadPool::global();
  pool.parallel_for(0, static_cast<size_t>(d.n), [&](size_t ni) {
    int n = static_cast<int>(ni);
    float* dxi = dx + static_cast<long>(n) * d.c * d.h * d.w;
    const float* dyi = dy + static_cast<long>(n) * d.k * oh * ow;
    for (int k = 0; k < d.k; ++k) {
      const float* wk = w + static_cast<long>(k) * d.c * d.kh * d.kw;
      const float* dyk = dyi + static_cast<long>(k) * oh * ow;
      for (int oy = 0; oy < oh; ++oy) {
        for (int ox = 0; ox < ow; ++ox) {
          float g = dyk[static_cast<long>(oy) * ow + ox];
          if (g == 0.0f) continue;
          for (int c = 0; c < d.c; ++c) {
            float* plane = dxi + static_cast<long>(c) * d.h * d.w;
            const float* wc = wk + static_cast<long>(c) * d.kh * d.kw;
            for (int ki = 0; ki < d.kh; ++ki) {
              int iy = oy * d.stride_h - d.pad_h + ki;
              if (iy < 0 || iy >= d.h) continue;
              for (int kj = 0; kj < d.kw; ++kj) {
                int ix = ox * d.stride_w - d.pad_w + kj;
                if (ix < 0 || ix >= d.w) continue;
                plane[static_cast<long>(iy) * d.w + ix] += g * wc[ki * d.kw + kj];
              }
            }
          }
        }
      }
    }
  });
}

void im2col_backward_data(const ConvDesc& d, const float* w, const float* dy, float* dx,
                          float* ws) {
  const Conv2dGeom g = d.geom();
  const long ospatial = static_cast<long>(d.out_h()) * d.out_w();
  const int ck = d.c * d.kh * d.kw;
  const uint64_t slice = col_elems(d);
  util::ThreadPool::global().parallel_for(0, static_cast<size_t>(d.n), [&](size_t n) {
    float* col = ws + n * slice;
    // colgrad (CK x OS) = Wᵀ (CK x K) * dy_n (K x OS)
    sgemm(true, false, ck, static_cast<int>(ospatial), d.k, 1.0f, w, ck,
          dy + static_cast<long>(n) * d.k * ospatial, static_cast<int>(ospatial), 0.0f, col,
          static_cast<int>(ospatial));
    col2im(g, col, dx + static_cast<long>(n) * d.c * d.h * d.w);
  });
}

void direct_backward_filter(const ConvDesc& d, const float* x, const float* dy, float* dw,
                            float* db) {
  const int oh = d.out_h(), ow = d.out_w();
  const size_t wdim = static_cast<size_t>(d.c) * d.kh * d.kw;
  // Per-sample contributions accumulate in double with a fixed spatial
  // order, are cast to float, and reduce over the batch as a pairwise tree
  // (shard-composable — data-parallel replicas must be able to reproduce
  // the full-batch gradient bit for bit; see util/pairwise.hpp). Channels
  // run in blocks so scratch is allocated per block, not per channel.
  auto& pool = util::ThreadPool::global();
  const int grain = std::max(1, d.k / static_cast<int>(pool.size() * 4));
  const int blocks = (d.k + grain - 1) / grain;
  pool.parallel_for(0, static_cast<size_t>(blocks), [&](size_t bi) {
    const int bk0 = static_cast<int>(bi) * grain;
    const int bk1 = std::min(d.k, bk0 + grain);
    util::PairwiseVecAccumulator acc(wdim);
    std::vector<double> sample(wdim);
    std::vector<float> leaf(wdim);
    std::vector<float> db_leaf(db ? static_cast<size_t>(d.n) : 0);
    for (int k = bk0; k < bk1; ++k) {
      for (int n = 0; n < d.n; ++n) {
        std::fill(sample.begin(), sample.end(), 0.0);
        double dbn = 0.0;
        const float* xi = x + static_cast<long>(n) * d.c * d.h * d.w;
        const float* dyk = dy + (static_cast<long>(n) * d.k + k) * oh * ow;
        for (int oy = 0; oy < oh; ++oy) {
          for (int ox = 0; ox < ow; ++ox) {
            float g = dyk[static_cast<long>(oy) * ow + ox];
            dbn += g;
            if (g == 0.0f) continue;
            for (int c = 0; c < d.c; ++c) {
              const float* plane = xi + static_cast<long>(c) * d.h * d.w;
              double* wc = sample.data() + static_cast<long>(c) * d.kh * d.kw;
              for (int ki = 0; ki < d.kh; ++ki) {
                int iy = oy * d.stride_h - d.pad_h + ki;
                if (iy < 0 || iy >= d.h) continue;
                for (int kj = 0; kj < d.kw; ++kj) {
                  int ix = ox * d.stride_w - d.pad_w + kj;
                  if (ix < 0 || ix >= d.w) continue;
                  wc[ki * d.kw + kj] +=
                      static_cast<double>(g) *
                      static_cast<double>(plane[static_cast<long>(iy) * d.w + ix]);
                }
              }
            }
          }
        }
        for (size_t i = 0; i < wdim; ++i) leaf[i] = static_cast<float>(sample[i]);
        acc.push(leaf.data());
        if (db) db_leaf[static_cast<size_t>(n)] = static_cast<float>(dbn);
      }
      acc.finish(dw + static_cast<long>(k) * wdim);
      if (db) {
        db[k] = util::pairwise_sum<float>(static_cast<uint64_t>(d.n),
                                          [&](uint64_t n) { return db_leaf[n]; });
      }
    }
  });
}

void im2col_backward_filter(const ConvDesc& d, const float* x, const float* dy, float* dw,
                            float* db, float* ws) {
  const Conv2dGeom g = d.geom();
  const long ospatial = static_cast<long>(d.out_h()) * d.out_w();
  const int ck = d.c * d.kh * d.kw;
  const size_t wdim = static_cast<size_t>(d.k) * ck;
  // Images run sequentially (the column slice still comes from the
  // batch-scale workspace); each image's dW lands in a scratch leaf and the
  // batch reduces as a pairwise tree, matching the direct path bit for bit
  // (same per-sample products in the same spatial order).
  util::PairwiseVecAccumulator acc(wdim);
  std::vector<float> leaf(wdim);
  for (int n = 0; n < d.n; ++n) {
    float* col = ws + static_cast<uint64_t>(n) * col_elems(d);
    im2col(g, x + static_cast<long>(n) * d.c * d.h * d.w, col);
    // dW_n (K x CK) = dy_n (K x OS) * colᵀ (OS x CK)
    sgemm(false, true, d.k, ck, static_cast<int>(ospatial), 1.0f,
          dy + static_cast<long>(n) * d.k * ospatial, static_cast<int>(ospatial), col,
          static_cast<int>(ospatial), 0.0f, leaf.data(), ck);
    acc.push(leaf.data());
  }
  acc.finish(dw);
  if (db) {
    for (int k = 0; k < d.k; ++k) {
      db[k] = util::pairwise_sum<float>(static_cast<uint64_t>(d.n), [&](uint64_t n) {
        const float* row = dy + (static_cast<long>(n) * d.k + k) * ospatial;
        double spatial = 0.0;
        for (long i = 0; i < ospatial; ++i) spatial += row[i];
        return static_cast<float>(spatial);
      });
    }
  }
}

}  // namespace

const char* algo_name(ConvAlgo a) {
  switch (a) {
    case ConvAlgo::kDirect: return "DIRECT";
    case ConvAlgo::kIm2colGemm: return "IM2COL_GEMM";
    case ConvAlgo::kWinograd: return "WINOGRAD";
    case ConvAlgo::kFftTiled: return "FFT_TILED";
  }
  return "?";
}

bool conv_algo_supported(const ConvDesc& d, ConvAlgo algo) {
  switch (algo) {
    case ConvAlgo::kDirect:
    case ConvAlgo::kIm2colGemm:
      return true;
    case ConvAlgo::kWinograd:
      return d.kh == 3 && d.kw == 3 && d.stride_h == 1 && d.stride_w == 1;
    case ConvAlgo::kFftTiled:
      return d.stride_h == 1 && d.stride_w == 1 && d.kh <= d.h && d.kw <= d.w;
  }
  return false;
}

uint64_t conv_workspace_bytes(const ConvDesc& d, ConvAlgo algo, ConvPass pass) {
  if (!conv_algo_supported(d, algo)) return 0;
  switch (algo) {
    case ConvAlgo::kDirect:
      return 0;
    case ConvAlgo::kIm2colGemm:
      return col_bytes(d);
    case ConvAlgo::kWinograd:
      if (pass == ConvPass::kForward)
        return winograd_workspace_floats(d.k, d.c, d.out_h(), d.out_w()) * sizeof(float) *
               static_cast<uint64_t>(d.n);
      return col_bytes(d);  // backward passes run the im2col path
    case ConvAlgo::kFftTiled: {
      // Per-image frequency-domain buffers: C input spectra + filter +
      // accumulator planes, complex (2 floats) per point, pow2 padding — the
      // reason FFT is the workspace-hungriest choice on cuDNN as well. The
      // reservation (c + k + min) planes exceeds the execution's (c + 2),
      // covering cuDNN-style output-spectrum caching.
      FftPlan p = fft_plan(d.geom());
      uint64_t planes = static_cast<uint64_t>(d.c) + d.k + std::min(d.c, d.k);
      uint64_t fft = 2 * sizeof(float) * p.plane() * planes * static_cast<uint64_t>(d.n);
      return std::max(fft, col_bytes(d));  // backward still uses the im2col path
    }
  }
  return 0;
}

double conv_algo_efficiency(const ConvDesc& d, ConvAlgo algo, ConvPass pass) {
  if (!conv_algo_supported(d, algo)) return 0.0;
  double eff = 0.0;
  switch (algo) {
    case ConvAlgo::kDirect:
      eff = 0.18;
      break;
    case ConvAlgo::kIm2colGemm:
      eff = 0.45;
      break;
    case ConvAlgo::kWinograd:
      // 2.25x arithmetic reduction for F(2x2,3x3) folded into efficiency.
      eff = 0.62;
      break;
    case ConvAlgo::kFftTiled:
      // FFT amortizes better the bigger the kernel; for 3x3 it trails
      // Winograd, from 5x5 up it is the fastest option (mirrors cuDNN).
      eff = std::min(0.68, 0.18 + 0.06 * std::max(d.kh, d.kw));
      break;
  }
  if (pass != ConvPass::kForward) eff *= 0.9;  // backward kernels run slightly worse
  return eff;
}

double conv_flops(const ConvDesc& d, ConvPass) {
  return 2.0 * d.n * d.k * d.c * d.kh * d.kw * d.out_h() * d.out_w();
}

void conv_forward(const ConvDesc& d, ConvAlgo algo, const float* x, const float* w,
                  const float* bias, float* y, float* ws) {
  assert(conv_algo_supported(d, algo));
  const float* b = d.has_bias ? bias : nullptr;
  switch (algo) {
    case ConvAlgo::kDirect:
      direct_forward(d, x, w, b, y);
      return;
    case ConvAlgo::kWinograd:
      winograd_forward(d, x, w, b, y, ws);
      return;
    case ConvAlgo::kIm2colGemm:
      im2col_forward(d, x, w, b, y, ws);
      return;
    case ConvAlgo::kFftTiled:
      fft_forward(d, x, w, b, y, ws);
      return;
  }
}

void conv_backward_data(const ConvDesc& d, ConvAlgo algo, const float* w, const float* dy,
                        float* dx, float* ws) {
  if (algo == ConvAlgo::kDirect || ws == nullptr) {
    direct_backward_data(d, w, dy, dx);
  } else {
    im2col_backward_data(d, w, dy, dx, ws);
  }
}

void conv_backward_filter(const ConvDesc& d, ConvAlgo algo, const float* x, const float* dy,
                          float* dw, float* db, float* ws) {
  if (algo == ConvAlgo::kDirect || ws == nullptr) {
    direct_backward_filter(d, x, dy, dw, d.has_bias ? db : nullptr);
  } else {
    im2col_backward_filter(d, x, dy, dw, d.has_bias ? db : nullptr, ws);
  }
}

}  // namespace sn::nn
